package vehicle

import (
	"errors"
	"math"

	"coopmrm/internal/geom"
)

// ErrSteeringFailed is returned when a new path is commanded while the
// steering actuator is failed.
var ErrSteeringFailed = errors.New("vehicle: steering failed, cannot accept new path")

// Body is the kinematic state of one vehicle: it follows a path with
// bounded acceleration and deceleration and supports actuation-failure
// effects (degraded brakes, dead propulsion, locked steering).
type Body struct {
	spec Spec

	pose  geom.Pose
	speed float64 // m/s along the path

	path    *geom.Path
	pathPos float64 // arc length progressed along path

	targetSpeed float64
	stopDecel   float64 // >0: actively stopping at this decel

	brakeFactor float64 // multiplies available decel; 1 = nominal
	propulsion  bool
	steering    bool
}

// NewBody returns a body at the given pose with nominal actuators and
// zero speed.
func NewBody(spec Spec, pose geom.Pose) *Body {
	b := new(Body)
	b.Reinit(spec, pose)
	return b
}

// Reinit resets the body in place to the just-constructed state —
// the warm-rig path reuses body allocations across runs. Fresh
// construction routes through the same assignment (NewBody is Reinit
// on a zero struct), so a reinitialised body is identical to a fresh
// one by construction.
func (b *Body) Reinit(spec Spec, pose geom.Pose) {
	*b = Body{
		spec:        spec,
		pose:        pose,
		brakeFactor: 1,
		propulsion:  true,
		steering:    true,
	}
}

// Spec returns the body's static spec.
func (b *Body) Spec() Spec { return b.spec }

// Pose returns the current pose.
func (b *Body) Pose() geom.Pose { return b.pose }

// Position returns the current position.
func (b *Body) Position() geom.Vec2 { return b.pose.Pos }

// Speed returns the current speed in m/s.
func (b *Body) Speed() float64 { return b.speed }

// Stopped reports whether the vehicle is (effectively) stationary.
func (b *Body) Stopped() bool { return b.speed < 1e-6 }

// Path returns the current path, or nil when idle.
func (b *Body) Path() *geom.Path { return b.path }

// PathProgress returns the arc length progressed along the current
// path, and the path total (0, 0 when idle).
func (b *Body) PathProgress() (done, total float64) {
	if b.path == nil {
		return 0, 0
	}
	return b.pathPos, b.path.Len()
}

// RemainingPath returns the arc length left on the current path.
func (b *Body) RemainingPath() float64 {
	if b.path == nil {
		return 0
	}
	return b.path.Len() - b.pathPos
}

// Arrived reports whether the body has reached the end of its path
// and stopped.
func (b *Body) Arrived() bool {
	return b.path != nil && b.RemainingPath() < 0.05 && b.Stopped()
}

// Idle reports whether the body has no path.
func (b *Body) Idle() bool { return b.path == nil }

// SetPath assigns a new path to follow from its start; the body's
// position snaps to the nearest point on the path (vehicles are
// dispatched on paths that begin at their location). Fails when
// steering is inoperative.
func (b *Body) SetPath(p *geom.Path, targetSpeed float64) error {
	if !b.steering {
		return ErrSteeringFailed
	}
	b.path = p
	s, _ := p.Project(b.pose.Pos)
	b.pathPos = s
	b.targetSpeed = targetSpeed
	b.stopDecel = 0
	// Align the heading with the new path immediately (site vehicles
	// turn in place); otherwise a stationary vehicle would keep
	// "facing" an obstacle its new route avoids.
	if p.Len() > 0 {
		_, heading := p.PoseAt(s)
		b.pose.Heading = heading
	}
	return nil
}

// ClearPath drops the current path (after arrival or abort).
func (b *Body) ClearPath() {
	b.path = nil
	b.pathPos = 0
	b.targetSpeed = 0
	b.stopDecel = 0
}

// SetTargetSpeed adjusts the cruise speed (clamped to spec and current
// capability ceiling imposed by the caller).
func (b *Body) SetTargetSpeed(v float64) {
	b.targetSpeed = geom.Clamp(v, 0, b.spec.MaxSpeed)
	b.stopDecel = 0
}

// TargetSpeed returns the commanded cruise speed.
func (b *Body) TargetSpeed() float64 { return b.targetSpeed }

// CommandStop initiates a controlled stop at the service deceleration
// (scaled by any brake degradation).
func (b *Body) CommandStop() {
	b.stopDecel = b.spec.ServiceDecel * b.brakeFactor
	if b.stopDecel <= 0 {
		b.stopDecel = 1e-9 // coasting only
	}
	b.targetSpeed = 0
}

// EmergencyStop initiates a hard stop at the emergency deceleration
// (scaled by any brake degradation).
func (b *Body) EmergencyStop() {
	b.stopDecel = b.spec.EmergencyDecel * b.brakeFactor
	if b.stopDecel <= 0 {
		b.stopDecel = 1e-9
	}
	b.targetSpeed = 0
}

// Stopping reports whether a stop command is active.
func (b *Body) Stopping() bool { return b.stopDecel > 0 }

// StoppingDistance returns the distance the vehicle needs to stop from
// its current speed with the service brake (as currently degraded).
func (b *Body) StoppingDistance() float64 {
	return StoppingDistance(b.speed, b.spec.ServiceDecel*b.brakeFactor)
}

// DegradeBrakes scales the available deceleration by factor in [0, 1].
func (b *Body) DegradeBrakes(factor float64) {
	b.brakeFactor = geom.Clamp(factor, 0, 1)
}

// BrakeFactor returns the current brake effectiveness in [0, 1].
func (b *Body) BrakeFactor() float64 { return b.brakeFactor }

// DisablePropulsion prevents further acceleration (the vehicle can
// still brake/coast to a stop).
func (b *Body) DisablePropulsion() { b.propulsion = false }

// EnablePropulsion restores acceleration (after repair).
func (b *Body) EnablePropulsion() { b.propulsion = true }

// PropulsionOK reports whether the vehicle can accelerate.
func (b *Body) PropulsionOK() bool { return b.propulsion }

// LockSteering prevents accepting new paths (the vehicle can still
// finish stopping along its current path tangent).
func (b *Body) LockSteering() { b.steering = false }

// UnlockSteering restores lateral control.
func (b *Body) UnlockSteering() { b.steering = true }

// SteeringOK reports whether lateral control works.
func (b *Body) SteeringOK() bool { return b.steering }

// Teleport moves the body instantaneously (scenario setup only).
func (b *Body) Teleport(pose geom.Pose) {
	b.pose = pose
	b.speed = 0
	b.ClearPath()
}

// Step advances the body by dt seconds: adjust speed toward the
// target under actuator limits, then advance along the path.
func (b *Body) Step(dt float64) {
	if dt <= 0 {
		return
	}
	// Longitudinal control.
	switch {
	case b.stopDecel > 0:
		b.speed = math.Max(0, b.speed-b.stopDecel*dt)
	case b.speed < b.targetSpeed && b.propulsion:
		b.speed = math.Min(b.targetSpeed, b.speed+b.spec.MaxAccel*dt)
	case b.speed > b.targetSpeed:
		decel := b.spec.ServiceDecel * b.brakeFactor
		if decel <= 0 {
			decel = 0.05 // rolling resistance
		}
		b.speed = math.Max(b.targetSpeed, b.speed-decel*dt)
	}
	if b.speed > b.spec.MaxSpeed {
		b.speed = b.spec.MaxSpeed
	}
	// Decelerate to stop at path end: do not overshoot.
	if b.path != nil {
		remaining := b.RemainingPath()
		decel := b.spec.ServiceDecel * b.brakeFactor
		if b.stopDecel == 0 && decel > 0 && remaining <= StoppingDistance(b.speed, decel)+b.speed*dt {
			b.speed = math.Max(0, b.speed-decel*dt)
		}
		advance := b.speed * dt
		if advance > remaining {
			advance = remaining
			b.speed = 0
		}
		b.pathPos += advance
		pos, heading := b.path.PoseAt(b.pathPos)
		b.pose = geom.Pose{Pos: pos, Heading: heading}
		if b.path.Len() == 0 {
			// Single-point path: we are there.
			b.speed = 0
		}
	}
}

// Footprint returns the oriented-box footprint of the vehicle for
// collision and proximity checks.
func (b *Body) Footprint() geom.OrientedBox {
	return geom.OrientedBox{
		Center:  b.pose.Pos,
		Heading: b.pose.Heading,
		Length:  b.spec.Length,
		Width:   b.spec.Width,
	}
}
