package coopmrm

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"

	"coopmrm/internal/runner"
)

// ParseSeedSpec parses a -seeds argument into an explicit seed list.
// Accepted forms:
//
//	"1..32"   the inclusive range 1, 2, ..., 32
//	"3,5,9"   an explicit comma-separated list
//	"x8"      8 seeds derived from base via DeriveSeed (never sharing
//	          a stream with base itself or each other)
func ParseSeedSpec(spec string, base int64) ([]int64, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("empty seed spec")
	}
	if rest, ok := strings.CutPrefix(spec, "x"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("seed spec %q: want x<count>, e.g. x8", spec)
		}
		// Same cap as the <lo>..<hi> form: the list is allocated up
		// front, so an oversized count would eat gigabytes before the
		// runner ever starts.
		if n > 1<<20 {
			return nil, fmt.Errorf("seed spec %q: range too large", spec)
		}
		seeds := make([]int64, n)
		for i := range seeds {
			seeds[i] = DeriveSeed(base, i)
		}
		return seeds, nil
	}
	if lo, hi, ok := strings.Cut(spec, ".."); ok {
		a, err1 := strconv.ParseInt(strings.TrimSpace(lo), 10, 64)
		b, err2 := strconv.ParseInt(strings.TrimSpace(hi), 10, 64)
		if err1 != nil || err2 != nil || b < a {
			return nil, fmt.Errorf("seed spec %q: want <lo>..<hi> with hi >= lo", spec)
		}
		if b-a+1 > 1<<20 {
			return nil, fmt.Errorf("seed spec %q: range too large", spec)
		}
		seeds := make([]int64, 0, b-a+1)
		for s := a; s <= b; s++ {
			seeds = append(seeds, s)
		}
		return seeds, nil
	}
	var seeds []int64
	seen := make(map[int64]bool)
	for _, part := range strings.Split(spec, ",") {
		s, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("seed spec %q: bad seed %q", spec, part)
		}
		// A repeated seed would run (and aggregate) the same arm
		// twice, silently skewing mean±sd — reject it.
		if seen[s] {
			return nil, fmt.Errorf("seed spec %q: duplicate seed %d", spec, s)
		}
		seen[s] = true
		seeds = append(seeds, s)
	}
	return seeds, nil
}

// SweepSeeds runs e once per seed, fanning the per-seed jobs across at
// most parallel workers, and aggregates the per-seed tables into one:
// cells identical across seeds are kept verbatim, numeric cells become
// "mean±sd", and divergent non-numeric cells report the number of
// distinct values. Aggregation happens over the seed-ordered tables,
// so the result is independent of worker count.
func SweepSeeds(e Experiment, opt Options, seeds []int64, parallel int) (Table, error) {
	tables, err := runner.Map(context.Background(), parallel, len(seeds), func(_ context.Context, i int) (Table, error) {
		return e.Run(opt.WithSeed(seeds[i])), nil
	})
	if err != nil {
		return Table{}, err
	}
	return AggregateSeedTables(tables, seeds), nil
}

// AggregateSeedTables folds per-seed tables of one experiment into a
// single table as described at SweepSeeds; sd is the Bessel-corrected
// sample standard deviation. Tables must be seed-ordered and of the
// same experiment; the first table supplies ID, title and header.
//
// This retained-table path is the exact two-pass oracle the streaming
// campaign path (SweepSeedsStream) is differentially tested against;
// it stays O(seeds) in memory by construction.
func AggregateSeedTables(tables []Table, seeds []int64) Table {
	if len(tables) == 0 {
		return Table{}
	}
	out := Table{
		ID:     tables[0].ID,
		Title:  tables[0].Title,
		Paper:  tables[0].Paper,
		Header: tables[0].Header,
		Note: strings.TrimSpace(fmt.Sprintf(
			"aggregated over %d seeds (%s): numeric cells are mean±sd. %s",
			len(seeds), seedSpan(seeds), tables[0].Note)),
	}
	rows := 0
	for _, t := range tables {
		if len(t.Rows) > rows {
			rows = len(t.Rows)
		}
	}
	for r := 0; r < rows; r++ {
		cols := 0
		for _, t := range tables {
			if r < len(t.Rows) && len(t.Rows[r]) > cols {
				cols = len(t.Rows[r])
			}
		}
		row := make([]string, cols)
		for c := 0; c < cols; c++ {
			cells := make([]string, len(tables))
			for i, t := range tables {
				cells[i] = t.Cell(r, c)
			}
			row[c] = aggregateCell(cells)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

func seedSpan(seeds []int64) string {
	if len(seeds) == 0 {
		return ""
	}
	if len(seeds) <= 4 {
		parts := make([]string, len(seeds))
		for i, s := range seeds {
			parts[i] = strconv.FormatInt(s, 10)
		}
		return strings.Join(parts, ",")
	}
	// A non-contiguous list like 3,5,9,11,20 must not render as a dense
	// "3..20 (5 seeds)" — mark the gap so the span is never mistaken
	// for the full inclusive range.
	for i := 1; i < len(seeds); i++ {
		if seeds[i] != seeds[i-1]+1 {
			return fmt.Sprintf("%d..%d (%d seeds, sparse)", seeds[0], seeds[len(seeds)-1], len(seeds))
		}
	}
	return fmt.Sprintf("%d..%d (%d seeds)", seeds[0], seeds[len(seeds)-1], len(seeds))
}

func aggregateCell(cells []string) string {
	same := true
	for _, c := range cells[1:] {
		if c != cells[0] {
			same = false
			break
		}
	}
	if same {
		return cells[0]
	}
	vals := make([]float64, len(cells))
	numeric, allPct := true, true
	for i, c := range cells {
		trimmed := strings.TrimSpace(c)
		stripped := strings.TrimSuffix(trimmed, "%")
		if stripped == trimmed {
			allPct = false
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(stripped), 64)
		// ParseFloat happily accepts "NaN" and "Inf"; a non-finite cell
		// cannot contribute to mean±sd, so treat it as non-numeric and
		// fall through to the varies(n) rendering.
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			numeric = false
			break
		}
		vals[i] = v
	}
	if !numeric {
		distinct := map[string]bool{}
		for _, c := range cells {
			distinct[c] = true
		}
		return fmt.Sprintf("varies(%d)", len(distinct))
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	var ss float64
	for _, v := range vals {
		ss += (v - mean) * (v - mean)
	}
	// Bessel-corrected sample sd (÷ n-1): the seeds are a sample from
	// the seed population, and the population formula (÷ n)
	// systematically underreports spread at the small n where it
	// matters most. n == 1 cannot happen here (a single table is always
	// "same"), but guard it rather than divide by zero.
	var sd float64
	if len(vals) > 1 {
		sd = math.Sqrt(ss / float64(len(vals)-1))
	}
	// When every cell carried the % unit, keep it on the aggregate so
	// "50%"/"60%" reads "55.00±5.00%", not a unitless number.
	unit := ""
	if allPct {
		unit = "%"
	}
	return fmt.Sprintf("%.2f±%.2f%s", mean, sd, unit)
}
