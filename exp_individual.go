package coopmrm

import (
	"fmt"
	"time"

	"coopmrm/internal/fault"
	"coopmrm/internal/scenario"
	"coopmrm/internal/sim"
	"coopmrm/internal/world"
)

// RunE1 reproduces Fig. 1a/1b: a single AV whose ODD exit triggers an
// MRM towards the best MRC (rest stop); a secondary failure mid-MRM
// forces a fallback to an easier MRC (shoulder). Sweeping the
// secondary-failure time shows the hierarchy in action: early
// failures land on the shoulder, late (or absent) ones reach the rest
// stop.
func RunE1(opt Options) Table {
	opt = opt.withDefaults()
	t := Table{
		ID:     "E1",
		Title:  "individual MRM/MRC hierarchy with mid-MRM fallback",
		Paper:  "Fig. 1a/1b",
		Header: []string{"secondary_fault", "final_MRC", "mrm_switches", "stop_risk", "mrm_duration_s"},
		Note:   "primary trigger: snow exits the road ODD at t=30s; secondary: propulsion failure at the given offset after the MRM start",
	}
	offsets := []time.Duration{0, 10 * time.Second, 60 * time.Second, 150 * time.Second}
	if opt.Quick {
		offsets = []time.Duration{0, 10 * time.Second}
	}
	for _, off := range offsets {
		label := "none"
		if off > 0 {
			label = fmt.Sprintf("t1+%ds", int(off.Seconds()))
		}
		finalMRC, switches, risk, dur := runE1Arm(opt, label, off)
		t.AddRow(label, finalMRC, fmt.Sprintf("%d", switches), f2(risk), f1(dur.Seconds()))
	}
	return t
}

func runE1Arm(opt Options, label string, secondaryAfter time.Duration) (finalMRC string, switches int, risk float64, mrmDur time.Duration) {
	rig, err := scenario.NewHighway(scenario.HighwayConfig{NCars: 1, Seed: opt.Seed})
	if err != nil {
		panic(err)
	}
	rig.Run(30 * time.Second)
	// Primary trigger: snow exits the road ODD while capabilities are
	// intact, so the best MRC (rest stop) is selected.
	rig.World.Weather = world.Weather{Condition: world.Snow, TemperatureC: -2}
	if secondaryAfter > 0 {
		rig.Injector.MustSchedule(fault.Fault{
			ID: "engine", Target: rig.Ego.ID(), Kind: fault.KindPropulsion,
			Severity: 1, Permanent: true, At: 30*time.Second + secondaryAfter,
		})
	}
	res := rig.Run(8 * time.Minute)
	opt.Observe("secondary="+label, res.Report, res.Log, rig.Net, rig.Injector)

	log := rig.Engine.Env().Log
	finalMRC = rig.Ego.CurrentMRC().ID
	switches = log.Count(sim.EventMRMSwitched)
	risk = rig.World.StopRiskAt(rig.Ego.Body().Position())
	start, okS := log.First(sim.EventMRMStarted)
	end, okE := log.Last(sim.EventMRCReached)
	if okS && okE {
		mrmDur = end.Time - start.Time
	}
	return finalMRC, switches, risk, mrmDur
}

// RunE4 reproduces the four Sec. III-B cases that separate
// performance degradation from MRC:
//
//	(i)   permanent radar fault  -> permanent degradation, goal kept
//	(ii)  rain                   -> temporary degradation, self-clears
//	(iii) digger breakdown       -> local MRC (with pair redundancy)
//	(iv)  platoon leader fault   -> role change, no system degradation
func RunE4(opt Options) Table {
	opt = opt.withDefaults()
	t := Table{
		ID:     "E4",
		Title:  "degradation vs MRC classification",
		Paper:  "Sec. III-B cases (i)-(iv)",
		Header: []string{"case", "trigger", "classification", "system_effect", "interventions"},
	}

	// Case (i): permanent radar fault on one truck.
	{
		rig := mustQuarry(scenario.QuarryConfig{
			Pairs: 2, Policy: scenario.PolicyCoordinated, Seed: opt.Seed,
			Faults: []fault.Fault{{
				ID: "radar", Target: "truck1_1", Kind: fault.KindSensor,
				Detail: "long_range_radar", Severity: 1, Permanent: true, At: 60 * time.Second,
			}},
		})
		res := rig.Run(e4Horizon(opt))
		cls := classificationOf(res.Log, "truck1_1")
		capRatio := rig.Trucks[0].SpeedCap() / rig.Trucks[0].Body().Spec().MaxSpeed
		t.AddRow("(i)", "radar fault (permanent)", cls,
			fmt.Sprintf("operational, speed cap %s of max", pct(capRatio)),
			fmt.Sprintf("%d", res.Report.Interventions))
	}

	// Case (ii): rain reduces perception temporarily.
	{
		rig := mustQuarry(scenario.QuarryConfig{Pairs: 2, Policy: scenario.PolicyCoordinated, Seed: opt.Seed})
		rig.Run(60 * time.Second)
		rig.World.Weather = world.Weather{Condition: world.Rain, TemperatureC: 15}
		rig.Run(90 * time.Second)
		rig.World.Weather = world.Weather{Condition: world.Clear, TemperatureC: 15}
		res := rig.Run(60 * time.Second)
		cls := classificationOf(res.Log, "truck1_1")
		cleared := res.Log.Count(sim.EventDegradCleared) > 0
		t.AddRow("(ii)", "rain (temporary)", cls,
			fmt.Sprintf("recovered without intervention: %s", yesno(cleared)),
			fmt.Sprintf("%d", res.Report.Interventions))
	}

	// Case (iii): one of two diggers breaks down.
	{
		rig := mustQuarry(scenario.QuarryConfig{
			Pairs: 2, Policy: scenario.PolicyCoordinated, Seed: opt.Seed,
			Faults: []fault.Fault{{
				ID: "dig", Target: "digger1", Kind: fault.KindSensor,
				Severity: 1, Permanent: true, At: 60 * time.Second,
			}},
		})
		res := rig.Run(e4Horizon(opt))
		operational := 0
		for _, c := range rig.All() {
			if c.Operational() {
				operational++
			}
		}
		t.AddRow("(iii)", "digger breakdown", "local MRC (constituent view)",
			fmt.Sprintf("%d/%d constituents continue, %.0f units delivered",
				operational, len(rig.All()), rig.Delivered()),
			fmt.Sprintf("%d", res.Report.Interventions))
	}

	// Case (iv): platoon leader loses its forward sensors.
	{
		rig, err := scenario.NewPlatoon(scenario.PlatoonConfig{
			Members: 5, Seed: opt.Seed,
			Faults: []fault.Fault{
				{ID: "radar", Target: "member1", Kind: fault.KindSensor,
					Detail: "long_range_radar", Severity: 1, Permanent: true, At: 60 * time.Second},
				{ID: "cam", Target: "member1", Kind: fault.KindSensor,
					Detail: "camera", Severity: 1, Permanent: true, At: 60 * time.Second},
			},
		})
		if err != nil {
			panic(err)
		}
		rig.Run(55 * time.Second)
		before := rig.Platoon.MeanSpeed()
		res := rig.Run(e4Horizon(opt))
		after := rig.Platoon.MeanSpeed()
		t.AddRow("(iv)", "platoon leader sensor fault",
			"role change (constituent: permanent degradation)",
			fmt.Sprintf("leader handovers %d, speed %s kept (%.1f -> %.1f m/s)",
				rig.Platoon.Elections(), pct(after/before), before, after),
			fmt.Sprintf("%d", res.Report.Interventions))
	}
	return t
}

func e4Horizon(opt Options) time.Duration {
	if opt.Quick {
		return 2 * time.Minute
	}
	return 4 * time.Minute
}

// classificationOf extracts the degradation classification recorded
// for a subject.
func classificationOf(log *sim.EventLog, subject string) string {
	for _, ev := range log.ByKind(sim.EventDegraded) {
		if ev.Subject == subject {
			return ev.Fields["kind"]
		}
	}
	for _, ev := range log.ByKind(sim.EventMRCReached) {
		if ev.Subject == subject {
			return "mrc"
		}
	}
	return "nominal"
}

func mustQuarry(cfg scenario.QuarryConfig) *scenario.QuarryRig {
	rig, err := scenario.NewQuarry(cfg)
	if err != nil {
		panic(err)
	}
	return rig
}

// quarryRig builds a quarry rig, serving it from the warm-rig pool
// when opt.ReuseRigs is set. The returned release parks a pooled rig
// for the next seed; call it only after the rig's results have been
// fully read — the next acquisition truncates the rig's event log in
// place. For unpooled rigs release is a no-op.
func quarryRig(opt Options, cfg scenario.QuarryConfig) (rig *scenario.QuarryRig, release func()) {
	if !opt.ReuseRigs {
		return mustQuarry(cfg), func() {}
	}
	rig, err := scenario.AcquireQuarry(cfg)
	if err != nil {
		panic(err)
	}
	return rig, rig.Release
}
