package coopmrm

// One benchmark per paper artefact (table/figure/narrative), as
// indexed in DESIGN.md. Each iteration regenerates the corresponding
// experiment in quick mode; run with
//
//	go test -bench=. -benchmem .
//
// The absolute wall-clock numbers measure the simulator, not the
// authors' vehicles; EXPERIMENTS.md records the reproduced shapes.

import (
	"runtime"
	"testing"
	"time"

	"coopmrm/internal/fault"
	"coopmrm/internal/geom"
	"coopmrm/internal/scenario"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table := e.Run(Options{Quick: true, Seed: int64(i + 1)})
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkE1Fig1Hierarchy regenerates Fig. 1a/1b (individual MRM/MRC
// hierarchy with mid-MRM fallback).
func BenchmarkE1Fig1Hierarchy(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2Fig2Granularity regenerates Fig. 2 (granularity vs
// productivity vs safety-case size).
func BenchmarkE2Fig2Granularity(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3Table1Matrix regenerates Table I (MRM/MRC capability per
// class).
func BenchmarkE3Table1Matrix(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4Degradation regenerates the Sec. III-B cases (i)-(iv).
func BenchmarkE4Degradation(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5HarbourEscalation regenerates the Sec. III-C MRC1->MRC2
// narrative.
func BenchmarkE5HarbourEscalation(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6StatusSharing regenerates the Sec. IV-A status-sharing
// mine example.
func BenchmarkE6StatusSharing(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7IntentSharing regenerates the Sec. IV-A intent-sharing
// freeway example.
func BenchmarkE7IntentSharing(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8AgreementSeeking regenerates the Sec. IV-A
// agreement-seeking examples (gap consent, evacuation).
func BenchmarkE8AgreementSeeking(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9Prescriptive regenerates the Sec. IV-A prescriptive
// examples (pocket order, flood shutdown).
func BenchmarkE9Prescriptive(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10Coordinated regenerates the Sec. IV-B coordinated
// examples.
func BenchmarkE10Coordinated(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11Choreographed regenerates the Sec. IV-B choreographed
// example (check-in deadlines).
func BenchmarkE11Choreographed(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12Orchestrated regenerates the Sec. IV-B orchestrated
// examples (TMS rerouting, global MRC styles).
func BenchmarkE12Orchestrated(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13Concerted regenerates the Definition 3 invariant check.
func BenchmarkE13Concerted(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14Baseline regenerates the class-vs-baseline comparison.
func BenchmarkE14Baseline(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15AutoRecovery regenerates the future-work autonomous
// recovery evaluation.
func BenchmarkE15AutoRecovery(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16ScaleSweep regenerates the fleet-size scale sweep.
func BenchmarkE16ScaleSweep(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17Chaos regenerates the V2X chaos campaign.
func BenchmarkE17Chaos(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkE18MegaFleet regenerates the mega-fleet sweep on the
// sharded tick engine (quick sizes; both engines per arm).
func BenchmarkE18MegaFleet(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkE19TransitionRisk regenerates the transition-risk grid
// (class × fault, seed-swept, planner-backed MRMs).
func BenchmarkE19TransitionRisk(b *testing.B) { benchExperiment(b, "E19") }

// benchMegaTick measures one full engine tick on a 200-pair quarry
// (400 constituents plus agents) mid-incident, sequentially or with
// the sharded plan installed. The ratio is the per-tick shard speedup
// on this machine; byte-identical output is asserted elsewhere (E18's
// sharded_match column, TestQuarryShardedMatchesSequential*).
func benchMegaTick(b *testing.B, shards int) {
	b.Helper()
	rig, err := scenario.NewQuarry(scenario.QuarryConfig{
		Pairs: 200, TrucksPerPair: 1,
		Policy: scenario.PolicyBaseline,
		Seed:   1,
		Shards: shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	victim := rig.Trucks[0]
	victim.Body().Teleport(geom.Pose{Pos: geom.V(150, 0)})
	victim.ApplyFault(fault.Fault{ID: "blind", Target: victim.ID(),
		Kind: fault.KindSensor, Severity: 1, Permanent: true})
	rig.Run(30 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.Engine.RunTick()
	}
}

// BenchmarkMegaFleetTickSeq is the 200-pair tick on the sequential
// engine.
func BenchmarkMegaFleetTickSeq(b *testing.B) { benchMegaTick(b, 0) }

// BenchmarkMegaFleetTickSharded is the same tick fanned across 4
// shard workers.
func BenchmarkMegaFleetTickSharded(b *testing.B) { benchMegaTick(b, 4) }

// benchProximity measures one metrics.Collector.Sample pass over a
// 10-pair quarry fleet mid-incident — the per-tick proximity hot path
// — with either the brute-force O(n²) scorer or the uniform-grid
// broad-phase. The rig reproduces the E16 baseline arm: a blind truck
// stranded mid-tunnel with the rest of the fleet queued behind it, so
// every constituent is stopped in active space and risk-relevant (the
// regime where proximity scoring actually runs; ticks with no
// relevant probe skip the pass entirely on both paths). The ratio
// between the two benchmarks is the index speedup quoted in
// README.md.
func benchProximity(b *testing.B, brute bool) {
	b.Helper()
	rig, err := scenario.NewQuarry(scenario.QuarryConfig{
		Pairs: 10, TrucksPerPair: 1,
		Policy: scenario.PolicyBaseline,
		Seed:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	victim := rig.Trucks[0]
	victim.Body().Teleport(geom.Pose{Pos: geom.V(150, 0)})
	victim.ApplyFault(fault.Fault{ID: "blind", Target: victim.ID(),
		Kind: fault.KindSensor, Severity: 1, Permanent: true})
	// Let the queue form behind the blockage.
	rig.Run(90 * time.Second)
	rig.Collector.UseBruteForce = brute
	env := rig.Engine.Env()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.Collector.Sample(env)
	}
}

// BenchmarkProximityBrute10PairQuarry samples every pair (the
// pre-index behaviour).
func BenchmarkProximityBrute10PairQuarry(b *testing.B) { benchProximity(b, true) }

// BenchmarkProximityIndexed10PairQuarry samples only broad-phase
// candidate pairs.
func BenchmarkProximityIndexed10PairQuarry(b *testing.B) { benchProximity(b, false) }

// BenchmarkE16QuarryTick measures one full engine tick — comm
// delivery, entity steps, fault injection, metrics sampling — on the
// 10-pair E16 quarry rig mid-incident with the status-sharing policy
// beaconing V2X traffic. This is the whole-tick companion to the
// per-subsystem benchmarks (BenchmarkProximity*, BenchmarkNetworkTick*,
// BenchmarkEventLogQuery*): run with -benchmem, its allocs/op is the
// allocation audit of the tick loop.
func BenchmarkE16QuarryTick(b *testing.B) {
	rig, err := scenario.NewQuarry(scenario.QuarryConfig{
		Pairs: 10, TrucksPerPair: 1,
		Policy: scenario.PolicyStatusSharing,
		Seed:   1,
	})
	if err != nil {
		b.Fatal(err)
	}
	victim := rig.Trucks[0]
	victim.Body().Teleport(geom.Pose{Pos: geom.V(150, 0)})
	victim.ApplyFault(fault.Fault{ID: "blind", Target: victim.ID(),
		Kind: fault.KindSensor, Severity: 1, Permanent: true})
	rig.Run(90 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rig.Engine.RunTick()
	}
}

func benchRunSet(b *testing.B, workers int) {
	b.Helper()
	all := append(AllExperiments(), AllAblations()...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := RunSet(all, Options{Quick: true, Seed: int64(i + 1)}, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) != len(all) {
			b.Fatalf("tables = %d, want %d", len(tables), len(all))
		}
	}
}

// BenchmarkAllSerial runs the full E1..E17 + A1..A5 index through the
// worker pool with one worker — the serial baseline.
func BenchmarkAllSerial(b *testing.B) { benchRunSet(b, 1) }

// BenchmarkAllParallel fans the same index across one worker per CPU;
// the ratio to BenchmarkAllSerial is the harness speedup.
func BenchmarkAllParallel(b *testing.B) { benchRunSet(b, runtime.NumCPU()) }

// benchSweepMemory runs a fixed-size synthetic seed sweep through
// either the retained path (every per-seed table held until the final
// two-pass aggregation) or the streaming campaign path (per-cell
// Welford accumulators, memory independent of seed count) and reports
// the peak live heap observed mid-sweep. Together the four benchmarks
// are the memory claim behind SweepSeedsStream: peak-live-B stays flat
// on the streaming path as seeds grow 4×, and grows linearly on the
// retained path. The peak is sampled inside the arm's Run — called
// once per seed on both paths — after a forced GC, so it measures
// retention, not allocation churn (B/op counts the discarded per-seed
// tables on both paths and scales with seeds either way).
func benchSweepMemory(b *testing.B, seeds int, stream bool) {
	b.Helper()
	var peak uint64
	calls := 0
	e := benchSyntheticArm(func() {
		// Sampling with a forced GC is expensive; every 500 seeds is
		// plenty to catch the retained path's growth.
		if calls++; calls%500 != 0 {
			return
		}
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peak {
			peak = ms.HeapAlloc
		}
	})
	list := make([]int64, seeds)
	for i := range list {
		list[i] = int64(i + 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tab Table
		var err error
		if stream {
			tab, err = SweepSeedsStream(e, Options{Quick: true}, list, 1, CampaignConfig{})
		} else {
			tab, err = SweepSeeds(e, Options{Quick: true}, list, 1)
		}
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("sweep produced no rows")
		}
	}
	b.ReportMetric(float64(peak), "peak-live-B")
}

// benchSyntheticArm mirrors the sweep_stream_test fixture: a cheap
// deterministic 6×5 table whose numeric cells vary per seed. onRun is
// invoked at the top of every per-seed Run (the memory sampling hook).
func benchSyntheticArm(onRun func()) Experiment {
	return Experiment{
		ID:    "SYNB",
		Title: "synthetic bench arm",
		Run: func(opt Options) Table {
			onRun()
			tab := Table{ID: "SYNB", Title: "synthetic bench arm",
				Header: []string{"arm", "a", "b", "c", "d"}}
			for r := 0; r < 6; r++ {
				v := float64(opt.Seed%97) + float64(r)
				tab.AddRow(
					"arm"+string(rune('a'+r)),
					time.Duration(v*float64(time.Millisecond)).String(),
					"42",
					"50%",
					"3.5",
				)
			}
			return tab
		},
	}
}

// BenchmarkSweepRetained1kSeeds holds 1000 per-seed tables for the
// final two-pass aggregation — O(seeds) retention.
func BenchmarkSweepRetained1kSeeds(b *testing.B) { benchSweepMemory(b, 1000, false) }

// BenchmarkSweepRetained4kSeeds is the linear-growth data point: ~4×
// the peak-live-B of the 1k run.
func BenchmarkSweepRetained4kSeeds(b *testing.B) { benchSweepMemory(b, 4000, false) }

// BenchmarkSweepStream1kSeeds folds the same 1000 seeds into per-cell
// accumulators — O(rows×cols) retention.
func BenchmarkSweepStream1kSeeds(b *testing.B) { benchSweepMemory(b, 1000, true) }

// BenchmarkSweepStream4kSeeds is the flat-memory data point:
// peak-live-B within noise of the 1k run despite 4× the seeds.
func BenchmarkSweepStream4kSeeds(b *testing.B) { benchSweepMemory(b, 4000, true) }
