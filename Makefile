GO ?= go

.PHONY: build test check race vet lint bench benchdiff microbench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis beyond go vet. CI installs staticcheck
# (honnef.co/go/tools/cmd/staticcheck); locally the target runs it when
# present and prints a notice otherwise, so `make lint` never fails on
# a machine without the binary (or without network access to fetch it).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./...

# The CI gate: build, vet, and the full test suite under the race
# detector (the parallel runner keeps the whole tree concurrency-clean).
check: build vet race

# bench regenerates the committed quick-suite baseline
# BENCH_quick.json (serial, seed 1 — the exact configuration the CI
# perf gate diffs against). Run it after an intentional perf-relevant
# change so the baseline tracks the trajectory.
bench:
	rm -rf .bench-out
	$(GO) run ./cmd/experiments -quick -parallel 1 -out .bench-out >/dev/null
	cp .bench-out/bench.json BENCH_quick.json
	rm -rf .bench-out
	@echo "BENCH_quick.json regenerated"

# benchdiff runs the quick suite fresh and diffs it against the
# committed baseline WITHOUT overwriting it — the perf-regression
# gate. Exit 1 when any experiment (or the total) is more than 50%
# slower than the baseline; CI runs this warn-only (wall clocks on
# shared runners are noisy), see cmd/benchdiff for the threshold
# semantics.
benchdiff:
	rm -rf .bench-out
	$(GO) run ./cmd/experiments -quick -parallel 1 -out .bench-out >/dev/null
	$(GO) run ./cmd/benchdiff -threshold 0.5 BENCH_quick.json .bench-out/bench.json

# microbench runs the Go micro-benchmarks with allocation accounting:
# the per-artefact experiment benchmarks plus the hot-path pairs
# (event-log query indexed vs scan, network tick heap vs scan,
# proximity indexed vs brute, E16 full tick).
microbench:
	$(GO) test -bench=. -benchmem .
	$(GO) test -bench=. -benchmem ./internal/runner ./internal/comm ./internal/sim
