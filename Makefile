GO ?= go

.PHONY: build test check race vet lint bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis beyond go vet. CI installs staticcheck
# (honnef.co/go/tools/cmd/staticcheck); locally the target runs it when
# present and prints a notice otherwise, so `make lint` never fails on
# a machine without the binary (or without network access to fetch it).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./...

# The CI gate: build, vet, and the full test suite under the race
# detector (the parallel runner keeps the whole tree concurrency-clean).
check: build vet race

bench:
	$(GO) test -bench=. -benchmem .
	$(GO) test -bench=. -benchmem ./internal/runner ./internal/comm
