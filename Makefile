GO ?= go

.PHONY: build test check race vet bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The CI gate: build, vet, and the full test suite under the race
# detector (the parallel runner keeps the whole tree concurrency-clean).
check: build vet race

bench:
	$(GO) test -bench=. -benchmem .
	$(GO) test -bench=. -benchmem ./internal/runner ./internal/comm
