GO ?= go

.PHONY: build test check race vet lint bench benchdiff microbench campaign-smoke serve-smoke servebench memprofile-campaign

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis beyond go vet. CI installs staticcheck
# (honnef.co/go/tools/cmd/staticcheck); locally the target runs it when
# present and prints a notice otherwise, so `make lint` never fails on
# a machine without the binary (or without network access to fetch it).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./...

# The CI gate: build, vet, and the full test suite under the race
# detector (the parallel runner keeps the whole tree concurrency-clean).
check: build vet race

# bench regenerates the committed quick-suite baseline
# BENCH_quick.json (serial, seed 1 — the exact configuration the CI
# perf gate diffs against). Run it after an intentional perf-relevant
# change so the baseline tracks the trajectory.
bench:
	rm -rf .bench-out
	$(GO) run ./cmd/experiments -quick -parallel 1 -out .bench-out >/dev/null
	cp .bench-out/bench.json BENCH_quick.json
	rm -rf .bench-out
	@echo "BENCH_quick.json regenerated"

# benchdiff runs the quick suite fresh and diffs it against the
# committed baseline WITHOUT overwriting it — the perf-regression
# gate. Exit 1 when any experiment (or the total) is more than 50%
# slower than the baseline; CI runs this warn-only (wall clocks on
# shared runners are noisy), see cmd/benchdiff for the threshold
# semantics.
benchdiff:
	rm -rf .bench-out
	$(GO) run ./cmd/experiments -quick -parallel 1 -out .bench-out >/dev/null
	$(GO) run ./cmd/benchdiff -threshold 0.5 BENCH_quick.json .bench-out/bench.json

# campaign-smoke is the end-to-end exercise of the streaming campaign
# path: run a small E19 sweep uninterrupted on fresh rig construction,
# run the same campaign on the warm-rig pool (-reuse-rigs) aborted
# mid-flight (-abort-after, the deterministic stand-in for a kill),
# resume it — also warm — from the checkpoint, and require the resumed
# output to be byte-identical to the fresh uninterrupted run. One cmp
# therefore pins two contracts at once: checkpoint/resume loses no
# folded seed, and a campaign mixing warm and cold rigs produces the
# same bytes as an all-cold one. Exit 1 on any divergence; not a
# timing gate, so CI runs it blocking.
campaign-smoke:
	rm -rf .campaign-smoke && mkdir -p .campaign-smoke
	$(GO) run ./cmd/experiments -quick -run E19 -seeds 1..8 -stream \
		>.campaign-smoke/uninterrupted.txt
	-$(GO) run ./cmd/experiments -quick -run E19 -seeds 1..8 -stream -reuse-rigs \
		-checkpoint .campaign-smoke/campaign.json -checkpoint-every 2 \
		-abort-after 4 >/dev/null 2>&1
	test -s .campaign-smoke/campaign.json
	$(GO) run ./cmd/experiments -quick -run E19 -seeds 1..8 -stream -reuse-rigs \
		-checkpoint .campaign-smoke/campaign.json -resume \
		>.campaign-smoke/resumed.txt
	cmp .campaign-smoke/uninterrupted.txt .campaign-smoke/resumed.txt
	rm -rf .campaign-smoke
	@echo "campaign-smoke: warm resumed output byte-identical to cold run"

# serve-smoke is the coopmrmd drain/resume contract through real
# processes and signals: run a sweep job to completion, run the same
# job on a fresh server, SIGTERM the process mid-campaign, restart it
# on the same state dir, and require the resumed artifact tar to be
# byte-identical to the uninterrupted one. Deterministic, so CI runs
# it blocking. Needs curl and jq.
serve-smoke:
	bash scripts/serve_smoke.sh

# servebench regenerates the committed coopmrmd throughput baseline
# BENCH_serve.json: sustained jobs/sec and runs/sec for 8 concurrent
# clients against a cold cache, then against a warm one. Wall-clock
# numbers — companion to BENCH_quick.json, not a CI gate.
servebench:
	$(GO) run ./cmd/coopmrmd -selfbench -bench-clients 8 -bench-jobs 32 \
		-bench-out BENCH_serve.json

# memprofile-campaign captures a heap profile of a streaming warm-rig
# campaign: an E19 seed sweep served from the snapshot/reset rig pool,
# serial so the profile reflects one worker's steady state. Inspect
# with `go tool pprof campaign.memprofile`; the live heap should be
# dominated by the parked rig chassis, not per-seed garbage.
memprofile-campaign:
	$(GO) run ./cmd/experiments -quick -run E19 -seeds 1..32 -stream -reuse-rigs \
		-parallel 1 -memprofile campaign.memprofile >/dev/null
	@echo "campaign.memprofile written (go tool pprof campaign.memprofile)"

# microbench runs the Go micro-benchmarks with allocation accounting:
# the per-artefact experiment benchmarks plus the hot-path pairs
# (event-log query indexed vs scan, network tick heap vs scan,
# proximity indexed vs brute, E16 full tick).
microbench:
	$(GO) test -bench=. -benchmem .
	$(GO) test -bench=. -benchmem ./internal/runner ./internal/comm ./internal/sim
