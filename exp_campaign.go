package coopmrm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"time"

	"coopmrm/internal/artifact"
	"coopmrm/internal/scenario"
)

// RunE20 benchmarks campaign rig-cycling throughput: the same
// streaming seed sweep run twice, once constructing a fresh quarry
// rig per seed and once serving rigs from the warm-rig pool
// (Options.ReuseRigs), and asserts the two arms' aggregated tables
// are byte-identical — reuse is an operational knob, never a result
// knob. The per-seed horizon is intentionally short so rig cycling
// dominates the wall time; this measures how fast the engine can
// turn seeds over, not how fast it simulates (E18 owns that claim).
//
// The table is byte-deterministic: the digest column is a hash of
// each arm's folded campaign table. Wall-clock rates (seeds/sec per
// arm) are reported through bench.json details, like E18's
// ticks/sec — the ≥2× warm-over-fresh claim lives there.
func RunE20(opt Options) Table {
	opt = opt.withDefaults()
	t := Table{
		ID:     "E20",
		Title:  "campaign throughput: warm-rig pool vs fresh construction",
		Paper:  "perf extension (snapshot/reset rig reuse)",
		Header: []string{"arm", "seeds", "ticks_per_seed", "sent_per_seed", "campaign_digest", "identical_to_fresh"},
		Note:   "both arms stream the same seed sweep; the warm arm serves rigs from the snapshot/reset pool; seeds/sec per arm is in bench.json details",
	}
	n := 30000
	if opt.Quick {
		n = 10000
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = opt.Seed + int64(i)
	}
	inner := Experiment{
		ID:    "E20",
		Title: "campaign throughput cell",
		Paper: "perf extension (snapshot/reset rig reuse)",
		Run:   runE20Seed,
	}

	arms := []struct {
		label string
		reuse bool
	}{{"fresh", false}, {"warm", true}}
	tables := make([]Table, len(arms))
	for i, arm := range arms {
		// Jobs must never share a recorder: the sweep runs bare; the
		// bundle gets one full observation pass below.
		armOpt := opt
		armOpt.Artifacts = nil
		armOpt.ReuseRigs = arm.reuse
		// Collect before the timer starts: under the full suite the
		// earlier experiments' retained artifacts make a large live
		// heap, and whether a background mark phase lands inside an
		// arm would otherwise dominate run-to-run variance. Starting
		// each arm just-collected gives both arms the same GC state —
		// the bench-harness equivalent of ResetTimer after setup.
		runtime.GC()
		start := time.Now()
		tab, err := SweepSeedsStream(inner, armOpt, seeds, 1, CampaignConfig{})
		if err != nil {
			panic(err)
		}
		wall := time.Since(start)
		tables[i] = tab
		opt.ObserveBench(artifact.BenchDetail{
			ID:          "E20/" + arm.label,
			Entities:    4,
			Ticks:       int64(n) * int64(e20Ticks),
			WallSeconds: wall.Seconds(),
			Seeds:       n,
			SeedsPerSec: float64(n) / wall.Seconds(),
		})
		identical := "n/a"
		if i > 0 {
			identical = yesno(tab.CSV() == tables[0].CSV())
		}
		t.AddRow(arm.label, fmt.Sprintf("%d", n), fmt.Sprintf("%d", e20Ticks),
			tab.Cell(0, 2), tableDigest(tab), identical)
	}
	if opt.Artifacts != nil {
		runE20Seed(opt.WithSeed(seeds[0]))
	}
	return t
}

// e20Ticks is the per-seed horizon in ticks: a couple of ticks of
// nominal coordinated operation. Deliberately no faults — an MRM's
// trajectory scoring costs milliseconds and would swamp the
// rig-cycling cost this experiment isolates (E19 owns the faulted
// campaign) — and deliberately short: the claim under test is how
// fast the engine turns rigs over, so construction must dominate the
// horizon.
const e20Ticks = 2

// runE20Seed is the per-seed cell the campaign folds: one small
// coordinated quarry cycled through a short nominal horizon.
func runE20Seed(opt Options) Table {
	opt = opt.withDefaults()
	t := Table{
		ID:     "E20",
		Title:  "campaign throughput cell",
		Paper:  "perf extension (snapshot/reset rig reuse)",
		Header: []string{"cell", "events", "sent", "min_sep", "delivered"},
	}
	horizon := e20Ticks * 100 * time.Millisecond
	rig, release := quarryRig(opt, scenario.QuarryConfig{
		Pairs: 2, TrucksPerPair: 1,
		Policy: scenario.PolicyCoordinated,
		Seed:   opt.Seed,
		Shards: opt.Shards,
	})
	res := rig.Run(horizon)
	opt.Observe("cell", res.Report, res.Log, rig.Net, rig.Injector)
	sent, _ := rig.Net.Stats()
	t.AddRow("quarry",
		fmt.Sprintf("%d", res.Log.Len()),
		fmt.Sprintf("%d", sent),
		f2(res.Report.MinSeparation),
		f2(rig.Delivered()))
	release()
	return t
}

// tableDigest renders a short stable fingerprint of a table so two
// campaign arms can be compared in a byte-deterministic cell.
func tableDigest(t Table) string {
	sum := sha256.Sum256([]byte(t.CSV()))
	return hex.EncodeToString(sum[:6])
}
