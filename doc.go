// Package coopmrm is a simulation framework for minimal risk
// manoeuvre (MRM) and minimal risk condition (MRC) strategies of
// cooperative and collaborative automated vehicles, reproducing
//
//	Vu, Warg, Thorsén, Ursing, Sunnerstam, Holler, Bergenhem, Cosmin:
//	"Minimal Risk Manoeuvre Strategies for Cooperative and
//	Collaborative Automated Vehicles", SSIV @ DSN 2023.
//
// The paper defines global and local MRCs, concerted MRMs, and
// permanent performance degradation for multi-vehicle systems, and
// characterises seven interaction classes (Table I). Its future work
// calls for simulations of those concepts; this module is that
// simulation system.
//
// The root package exposes the experiment harness that regenerates
// every figure, table and illustrative scenario of the paper as a
// quantified simulation (see EXPERIMENTS.md). The building blocks
// live under internal/: the deterministic simulation engine (sim),
// the world and vehicle substrates (world, vehicle, sensor, comm,
// fault, odd), the MRM/MRC core (core), the interaction-class
// policies (coop, collab, platoon), scenario composition (scenario),
// and analysis (metrics, safetycase, trace).
package coopmrm
