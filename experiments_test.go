package coopmrm

import (
	"strings"
	"testing"

	"coopmrm/internal/scenario"
)

// These tests assert the *shape* each experiment must reproduce from
// the paper — who wins, what escalates, which capabilities exist —
// rather than absolute numbers.

func quick() Options { return Options{Quick: true, Seed: 1} }

func TestRegistry(t *testing.T) {
	es := AllExperiments()
	if len(es) != 20 {
		t.Fatalf("experiments = %d, want 20", len(es))
	}
	seen := map[string]bool{}
	for _, e := range es {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ExperimentByID("E3"); !ok {
		t.Error("ExperimentByID failed")
	}
	if _, ok := ExperimentByID("E99"); ok {
		t.Error("unknown ID should fail")
	}
	if len(ExperimentIDs()) != 20 {
		t.Error("ExperimentIDs wrong")
	}
}

func TestTableHelpers(t *testing.T) {
	tab := Table{ID: "T", Title: "x", Header: []string{"a", "b"}}
	tab.AddRow("k1", "1.5")
	tab.AddRow("k2", "2.5")
	if tab.Cell(0, 1) != "1.5" || tab.Cell(9, 9) != "" {
		t.Error("Cell wrong")
	}
	if tab.CellFloat(1, 1) != 2.5 {
		t.Error("CellFloat wrong")
	}
	if _, ok := tab.CellFloatOK(0, 0); ok {
		t.Error("text cell must not parse as a float")
	}
	if tab.FindRow("k2") != 1 || tab.FindRow("zz") != -1 {
		t.Error("FindRow wrong")
	}
	out := tab.Render()
	if !strings.Contains(out, "T — x") || !strings.Contains(out, "k2") {
		t.Errorf("render: %s", out)
	}
}

// E1: without a secondary fault the AV reaches the best MRC (rest
// stop); an early secondary fault forces the fallback (shoulder) with
// exactly one switch, at higher residual risk (Fig. 1b).
func TestE1Shape(t *testing.T) {
	tab := RunE1(quick())
	none := tab.FindRow("none")
	early := tab.FindRow("t1+10s")
	if none < 0 || early < 0 {
		t.Fatalf("rows missing: %+v", tab.Rows)
	}
	if tab.Cell(none, 1) != "rest_stop" || tab.Cell(none, 2) != "0" {
		t.Errorf("no-secondary row = %v", tab.Rows[none])
	}
	if tab.Cell(early, 1) != "shoulder" || tab.Cell(early, 2) != "1" {
		t.Errorf("early-secondary row = %v", tab.Rows[early])
	}
	if tab.CellFloat(early, 3) <= tab.CellFloat(none, 3) {
		t.Error("fallback MRC must have higher residual risk")
	}
}

// E2: productivity rises and the safety case grows with granularity
// (Fig. 2's trade-off).
func TestE2Shape(t *testing.T) {
	tab := RunE2(quick())
	g := tab.FindRow("global_only")
	grp := tab.FindRow("per_group")
	con := tab.FindRow("per_constituent")
	if g < 0 || grp < 0 || con < 0 {
		t.Fatalf("rows missing: %+v", tab.Rows)
	}
	if !(tab.CellFloat(g, 2) < tab.CellFloat(grp, 2) && tab.CellFloat(grp, 2) < tab.CellFloat(con, 2)) {
		t.Errorf("productivity not increasing: %v %v %v",
			tab.Cell(g, 2), tab.Cell(grp, 2), tab.Cell(con, 2))
	}
	if !(tab.CellFloat(g, 5) < tab.CellFloat(grp, 5) && tab.CellFloat(grp, 5) < tab.CellFloat(con, 5)) {
		t.Errorf("obligations not increasing: %v %v %v",
			tab.Cell(g, 5), tab.Cell(grp, 5), tab.Cell(con, 5))
	}
}

// E3: every class's observed capabilities match Table I.
func TestE3MatchesTableI(t *testing.T) {
	tab := RunE3(quick())
	for _, row := range tab.Rows {
		if row[0] == scenario.PolicyBaseline.String() {
			continue
		}
		if row[4] != "yes" {
			t.Errorf("class %s does not match Table I: %v", row[0], row)
		}
	}
	// Spot checks straight from the paper.
	r := tab.FindRow("status_sharing")
	if tab.Cell(r, 2) != "no" {
		t.Error("status-sharing must not have global MRCs")
	}
	r = tab.FindRow("orchestrated")
	if tab.Cell(r, 2) != "yes" || tab.Cell(r, 3) != "yes" {
		t.Error("orchestrated must have global and concerted")
	}
}

// E4: the four Sec. III-B cases classify as the paper describes, with
// zero interventions (none of them is an MRC needing recovery, except
// (iii) whose MRC is local and left unrecovered).
func TestE4Shape(t *testing.T) {
	tab := RunE4(quick())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if got := tab.Cell(0, 2); got != "degraded_permanent" {
		t.Errorf("(i) = %q", got)
	}
	if got := tab.Cell(1, 2); got != "degraded_temporary" {
		t.Errorf("(ii) = %q", got)
	}
	if !strings.Contains(tab.Cell(2, 2), "local MRC") {
		t.Errorf("(iii) = %q", tab.Cell(2, 2))
	}
	if !strings.Contains(tab.Cell(3, 3), "handovers 1") {
		t.Errorf("(iv) = %q", tab.Cell(3, 3))
	}
	if !strings.Contains(tab.Cell(3, 3), "100%") {
		t.Errorf("(iv) system speed should be kept: %q", tab.Cell(3, 3))
	}
}

// E5: the two-level hierarchy salvages productivity after the first
// trigger; both policies end fully safe.
func TestE5Shape(t *testing.T) {
	tab := RunE5(quick())
	two := tab.FindRow("two_level_hierarchy")
	one := tab.FindRow("global_only")
	if two < 0 || one < 0 {
		t.Fatalf("rows: %+v", tab.Rows)
	}
	if tab.CellFloat(two, 2) <= tab.CellFloat(one, 2) {
		t.Errorf("two-level should deliver more after the trigger: %v vs %v",
			tab.Cell(two, 2), tab.Cell(one, 2))
	}
	if tab.Cell(two, 4) != "yes" || tab.Cell(one, 4) != "yes" {
		t.Error("both policies must end safe")
	}
}

// E6: status-sharing reroutes and keeps delivering; the baseline
// blocks.
func TestE6Shape(t *testing.T) {
	tab := RunE6(quick())
	base := tab.FindRow("baseline")
	status := tab.FindRow("status_sharing")
	if tab.CellFloat(status, 1) <= tab.CellFloat(base, 1) {
		t.Errorf("status-sharing must out-deliver baseline: %v vs %v",
			tab.Cell(status, 1), tab.Cell(base, 1))
	}
	if tab.Cell(status, 4) != "yes" || tab.Cell(base, 4) != "no" {
		t.Error("reroute flags wrong")
	}
}

// E7: intent-sharing increases the ego's separation during its MRM
// through early adaptation.
func TestE7Shape(t *testing.T) {
	tab := RunE7(quick())
	base := tab.FindRow("baseline")
	intent := tab.FindRow("intent_sharing")
	if tab.Cell(base, 1) != "shoulder" || tab.Cell(intent, 1) != "shoulder" {
		t.Errorf("ego should reach the shoulder in all arms: %+v", tab.Rows)
	}
	if tab.CellFloat(intent, 2) <= tab.CellFloat(base, 2) {
		t.Errorf("intent-sharing should raise ego separation: %v vs %v",
			tab.Cell(intent, 2), tab.Cell(base, 2))
	}
	if tab.CellFloat(intent, 3) < 1 {
		t.Error("intent-sharing should produce early reactions")
	}
	if v, ok := tab.CellFloatOK(base, 3); !ok || v != 0 {
		t.Errorf("baseline cannot produce early reactions: %q", tab.Cell(base, 3))
	}
}

// E8: consent leads to a concerted shoulder MRM; no consent falls
// back to the in-lane stop; the evacuation reaches a global MRC.
func TestE8Shape(t *testing.T) {
	tab := RunE8(quick())
	if !strings.Contains(tab.Cell(0, 3), "shoulder") || tab.Cell(0, 2) != "yes" {
		t.Errorf("granted row = %v", tab.Rows[0])
	}
	if !strings.Contains(tab.Cell(1, 3), "in_lane") {
		t.Errorf("no-consent row = %v", tab.Rows[1])
	}
	if !strings.Contains(tab.Cell(2, 1), "6 constituents") {
		t.Errorf("evacuation row = %v", tab.Rows[2])
	}
}

// E9: local pocket order stops one truck only; non-compliance falls
// back to the vehicle's own MRC; the flood order stops everyone.
func TestE9Shape(t *testing.T) {
	tab := RunE9(quick())
	if tab.Cell(0, 1) != "local" || !strings.Contains(tab.Cell(0, 4), "pocket") {
		t.Errorf("pocket row = %v", tab.Rows[0])
	}
	if !strings.Contains(tab.Cell(1, 4), "in_place") {
		t.Errorf("non-compliance row = %v", tab.Rows[1])
	}
	if !strings.Contains(tab.Cell(2, 2), "6/6") {
		t.Errorf("flood row = %v", tab.Rows[2])
	}
}

// E10: truck loss stays local with continued deliveries; digger loss
// and the common cause go global with zero deliveries after.
func TestE10Shape(t *testing.T) {
	tab := RunE10(quick())
	if tab.Cell(0, 1) != "local" || tab.CellFloat(0, 4) <= 0 {
		t.Errorf("(a) = %v", tab.Rows[0])
	}
	if v, ok := tab.CellFloatOK(1, 3); tab.Cell(1, 1) != "global" || !ok || v != 0 {
		t.Errorf("(b) = %v", tab.Rows[1])
	}
	if tab.Cell(2, 1) != "global" || tab.CellFloat(2, 2) != 6 {
		t.Errorf("(c) = %v", tab.Rows[2])
	}
}

// E11: shorter deadlines detect faster; detection latency is bounded
// by the deadline plus one haul cycle.
func TestE11Shape(t *testing.T) {
	tab := RunE11(quick())
	if len(tab.Rows) < 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	l60 := tab.CellFloat(0, 2)
	l120 := tab.CellFloat(1, 2)
	if l60 != 0 && l120 != 0 && l60 >= l120 {
		t.Errorf("latency should grow with deadline: %v vs %v", l60, l120)
	}
}

// E12: local truck loss keeps the TMS productive; digger loss goes
// global; the concerted park ends at lower residual risk than the
// immediate halt.
func TestE12Shape(t *testing.T) {
	tab := RunE12(quick())
	if tab.Cell(0, 2) != "no" || tab.CellFloat(0, 1) <= 0 {
		t.Errorf("(a) = %v", tab.Rows[0])
	}
	if tab.Cell(1, 2) != "yes" || tab.Cell(2, 2) != "yes" {
		t.Error("digger loss must be global in both styles")
	}
	halt := tab.CellFloat(1, 3)
	park := tab.CellFloat(2, 3)
	if park >= halt {
		t.Errorf("concerted park must end at lower risk: park %v vs halt %v", park, halt)
	}
}

// E13: the Definition 3 invariant holds across randomized episodes.
func TestE13Invariant(t *testing.T) {
	tab := RunE13(quick())
	if tab.Cell(0, 2) != "0" {
		t.Errorf("invariant violations: %v", tab.Rows[0])
	}
	if tab.Cell(0, 0) != tab.Cell(0, 1) {
		t.Errorf("all trials should complete: %v", tab.Rows[0])
	}
}

// E14: every interacting class delivers at least as much as the
// baseline on the same campaign.
func TestE14Shape(t *testing.T) {
	tab := RunE14(quick())
	base := tab.FindRow("baseline")
	if base < 0 {
		t.Fatal("baseline row missing")
	}
	baseDel := tab.CellFloat(base, 1)
	for _, row := range tab.Rows {
		if row[0] == "baseline" {
			continue
		}
		if tab.CellFloat(tab.FindRow(row[0]), 1) < baseDel {
			t.Errorf("%s delivered less than baseline: %v < %v", row[0], row[1], baseDel)
		}
	}
}

// E15: autonomous recovery resumes the goal with zero interventions
// on a one-shot transient, while the manual arm consumes one
// intervention per constituent; flapping weather exposes thrashing.
func TestE15Shape(t *testing.T) {
	tab := RunE15(quick())
	manual := tab.FindRow("manual (Defs. 1-2)")
	auto := tab.FindRow("autonomous (transient)")
	flap := tab.FindRow("autonomous (flapping)")
	if manual < 0 || auto < 0 || flap < 0 {
		t.Fatalf("rows: %+v", tab.Rows)
	}
	if tab.CellFloat(manual, 2) == 0 {
		t.Error("manual arm must consume interventions")
	}
	if v, ok := tab.CellFloatOK(auto, 2); !ok || v != 0 || tab.CellFloat(auto, 3) == 0 {
		t.Errorf("autonomous arm: interventions %v, recoveries %v",
			tab.Cell(auto, 2), tab.Cell(auto, 3))
	}
	if tab.CellFloat(auto, 4) < tab.CellFloat(manual, 4) {
		t.Error("autonomous recovery should not deliver less than the delayed manual recovery")
	}
	if tab.CellFloat(flap, 1) <= tab.CellFloat(auto, 1) {
		t.Error("flapping weather must produce more MRC cycles")
	}
}

// E16: the cooperation payoff (status-sharing minus baseline
// throughput) must be non-negative at every fleet size and strictly
// larger at the biggest deployment than the smallest — the scale
// argument the sweep exists to make.
func TestE16Shape(t *testing.T) {
	tab := RunE16(quick())
	if len(tab.Rows) < 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		gap := tab.CellFloat(i, 4)
		if gap < 0 {
			t.Errorf("pairs=%s: cooperation gap negative: %v", row[0], gap)
		}
	}
	first := tab.CellFloat(0, 4)
	last := tab.CellFloat(len(tab.Rows)-1, 4)
	if last <= first {
		t.Errorf("cooperation gap should widen with fleet size: %v (pairs=%s) vs %v (pairs=%s)",
			first, tab.Rows[0][0], last, tab.Rows[len(tab.Rows)-1][0])
	}
}

// Ablation shapes: the design-choice sensitivities documented in
// DESIGN.md.
func TestA1Shape(t *testing.T) {
	tab := RunA1(quick())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Risk non-increasing, duration non-decreasing with depth.
	for i := 1; i < len(tab.Rows); i++ {
		if tab.CellFloat(i, 3) > tab.CellFloat(i-1, 3) {
			t.Errorf("risk increased with depth at row %d", i)
		}
		if tab.CellFloat(i, 4) < tab.CellFloat(i-1, 4) {
			t.Errorf("MRM duration decreased with depth at row %d", i)
		}
	}
	if tab.Cell(0, 2) != "emergency" || tab.Cell(3, 2) != "rest_stop" {
		t.Errorf("endpoints wrong: %v / %v", tab.Rows[0], tab.Rows[3])
	}
}

func TestA2Shape(t *testing.T) {
	tab := RunA2(quick())
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Reroute delay grows with the beacon period.
	if !(tab.CellFloat(0, 2) < tab.CellFloat(2, 2)) {
		t.Errorf("delay not increasing: %v vs %v", tab.Cell(0, 2), tab.Cell(2, 2))
	}
}

func TestA3Shape(t *testing.T) {
	tab := RunA3(quick())
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Longest patience must not out-deliver the shortest.
	if tab.CellFloat(2, 1) > tab.CellFloat(0, 1) {
		t.Errorf("30s patience out-delivered 2s: %v vs %v", tab.Cell(2, 1), tab.Cell(0, 1))
	}
}

func TestA4Shape(t *testing.T) {
	tab := RunA4(quick())
	if tab.Cell(0, 2) != "yes" || tab.Cell(0, 1) != "shoulder" {
		t.Errorf("lossless row = %v", tab.Rows[0])
	}
	last := len(tab.Rows) - 1
	if tab.Cell(last, 2) != "no" || tab.Cell(last, 1) != "in_lane" {
		t.Errorf("high-loss row = %v", tab.Rows[last])
	}
	if tab.CellFloat(last, 3) <= tab.CellFloat(0, 3) {
		t.Error("losing agreement must cost stop risk")
	}
}

func TestAblationRegistry(t *testing.T) {
	if len(AllAblations()) != 5 {
		t.Error("ablations = 5 expected")
	}
	if _, ok := AblationByID("A1"); !ok {
		t.Error("AblationByID failed")
	}
	if _, ok := AblationByID("A9"); ok {
		t.Error("unknown ablation should fail")
	}
}

// A5: cumulative risk exposure grows with the MRC resolution time —
// the "rate of resolving the MRC" factor of the adopted definition.
func TestA5Shape(t *testing.T) {
	tab := RunA5(quick())
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i := 1; i < len(tab.Rows); i++ {
		if tab.CellFloat(i, 2) <= tab.CellFloat(i-1, 2) {
			t.Errorf("risk exposure not increasing with response time: %v then %v",
				tab.Cell(i-1, 2), tab.Cell(i, 2))
		}
	}
	if tab.CellFloat(0, 3) == 0 {
		t.Error("the crew should intervene at least once")
	}
}

func TestTableCSVAndMarkdown(t *testing.T) {
	tab := Table{ID: "T", Title: "demo", Paper: "Fig. X",
		Header: []string{"a", "b"}, Note: "n"}
	tab.AddRow("x|y", "2")
	csvOut := tab.CSV()
	if !strings.Contains(csvOut, "a,b\n") || !strings.Contains(csvOut, "x|y,2\n") {
		t.Errorf("csv = %q", csvOut)
	}
	md := tab.Markdown()
	for _, want := range []string{"**T — demo**", "| a | b |", "|---|---|", `x\|y`, "_n_"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

// E17: chaos campaign shapes. For every interaction class, zero-loss
// productivity must degrade monotonically with blackout duration, the
// V2X classes' drop share must grow with it, and the no-comms classes
// (baseline, choreographed) must be untouched by the partition.
func TestE17Shape(t *testing.T) {
	tab := RunE17(quick())
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Collect the zero-loss, zero-reorder rows per class, in sweep
	// order (ascending partition duration).
	type arm struct{ partition, deliveries, dropShare float64 }
	byClass := map[string][]arm{}
	var order []string
	for i, row := range tab.Rows {
		if tab.Cell(i, 2) != "0" || tab.Cell(i, 3) != "0" {
			continue
		}
		if _, seen := byClass[row[0]]; !seen {
			order = append(order, row[0])
		}
		byClass[row[0]] = append(byClass[row[0]],
			arm{tab.CellFloat(i, 1), tab.CellFloat(i, 4), tab.CellFloat(i, 6)})
	}
	if len(order) != 8 {
		t.Fatalf("classes = %d (%v), want all 8", len(order), order)
	}
	const tol = 0.11 // one unit is 1.0; absorb rounding only
	for _, class := range order {
		arms := byClass[class]
		if len(arms) < 3 {
			t.Fatalf("%s: %d zero-chaos arms, want the full duration sweep", class, len(arms))
		}
		v2x := class != "baseline" && class != "choreographed"
		for i := 1; i < len(arms); i++ {
			if arms[i].partition <= arms[i-1].partition {
				t.Fatalf("%s: durations not ascending: %+v", class, arms)
			}
			if arms[i].deliveries > arms[i-1].deliveries+tol {
				t.Errorf("%s: productivity rose with blackout duration: %v -> %v",
					class, arms[i-1].deliveries, arms[i].deliveries)
			}
			if v2x && arms[i].dropShare < arms[i-1].dropShare {
				t.Errorf("%s: drop share fell with blackout duration: %v -> %v",
					class, arms[i-1].dropShare, arms[i].dropShare)
			}
			if !v2x {
				if arms[i].deliveries != arms[0].deliveries {
					t.Errorf("%s: partition changed a no-comms class: %+v", class, arms)
				}
				if arms[i].dropShare != 0 {
					t.Errorf("%s: no-comms class dropped messages: %+v", class, arms)
				}
			}
		}
		// The longest blackout must hurt the V2X classes for real, not
		// just within tolerance (locks the experiment's signal).
		if v2x && !(arms[len(arms)-1].deliveries < arms[0].deliveries) {
			t.Errorf("%s: longest blackout did not reduce productivity: %+v", class, arms)
		}
	}
}
