package coopmrm

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"coopmrm/internal/artifact"
)

// syntheticArm builds a cheap deterministic experiment whose table has
// the given shape and whose numeric cells vary per seed — the
// workload for campaign-scale tests where a real rig run per seed
// would dominate the clock without exercising anything new in the
// aggregation path (the sweep machinery never looks inside Run).
func syntheticArm(rows, cols int) Experiment {
	return Experiment{
		ID:    "SYN",
		Title: "synthetic quick arm",
		Paper: "test fixture",
		Run: func(opt Options) Table {
			rng := rand.New(rand.NewSource(opt.Seed))
			tab := Table{ID: "SYN", Title: "synthetic quick arm", Paper: "test fixture",
				Note: "fixture"}
			for c := 0; c < cols; c++ {
				tab.Header = append(tab.Header, fmt.Sprintf("c%d", c))
			}
			for r := 0; r < rows; r++ {
				row := make([]string, cols)
				row[0] = fmt.Sprintf("arm%d", r)
				for c := 1; c < cols; c++ {
					row[c] = strconv.FormatFloat(float64(r*cols+c)+rng.Float64(), 'f', 3, 64)
				}
				tab.AddRow(row...)
			}
			return tab
		},
	}
}

// randomTableArm generates per-seed tables drawing every cell position
// from a fixed per-position generator mode — constant, numeric,
// percent, small categorical, non-finite, occasionally-missing — so a
// sweep over it exercises every aggregation rule, including ragged
// tables and cells that turn non-numeric mid-campaign.
func randomTableArm(structSeed int64, rows, cols int) Experiment {
	srng := rand.New(rand.NewSource(structSeed))
	modes := make([][]int, rows)
	for r := range modes {
		modes[r] = make([]int, cols)
		for c := range modes[r] {
			modes[r][c] = srng.Intn(6)
		}
	}
	return Experiment{
		ID: "RND", Title: "randomized differential arm", Paper: "test fixture",
		Run: func(opt Options) Table {
			rng := rand.New(rand.NewSource(opt.Seed * 7919))
			tab := Table{ID: "RND", Title: "randomized differential arm",
				Paper: "test fixture", Note: "random fixture"}
			for c := 0; c < cols; c++ {
				tab.Header = append(tab.Header, fmt.Sprintf("c%d", c))
			}
			// Ragged: some seeds emit one row fewer, so the final row's
			// cells mix "" with values across the campaign.
			emitRows := rows
			if rng.Intn(4) == 0 {
				emitRows--
			}
			for r := 0; r < emitRows; r++ {
				row := make([]string, cols)
				for c := 0; c < cols; c++ {
					switch modes[r][c] {
					case 0:
						row[c] = "constant"
					case 1:
						row[c] = strconv.FormatFloat(10*rng.Float64(), 'f', 2, 64)
					case 2:
						row[c] = fmt.Sprintf("%.1f%%", 100*rng.Float64())
					case 3:
						row[c] = []string{"yes", "no", "degraded"}[rng.Intn(3)]
					case 4:
						// Mostly numeric, occasionally non-finite: the
						// cell must fall to varies(n) exactly as the
						// oracle does.
						if rng.Intn(8) == 0 {
							row[c] = []string{"NaN", "+Inf"}[rng.Intn(2)]
						} else {
							row[c] = strconv.FormatFloat(rng.Float64(), 'f', 2, 64)
						}
					case 5:
						// Identical across seeds but numeric-looking.
						row[c] = "42"
					}
				}
				tab.AddRow(row...)
			}
			return tab
		},
	}
}

// parseMeanSD splits an aggregated cell "m±s[%][ …]" into its mean and
// sd numbers and unit.
func parseMeanSD(t *testing.T, cell string) (mean, sd float64, pct bool) {
	t.Helper()
	body, _, _ := strings.Cut(cell, " [")
	m, s, ok := strings.Cut(body, "±")
	if !ok {
		t.Fatalf("cell %q is not mean±sd", cell)
	}
	pct = strings.HasSuffix(s, "%")
	s = strings.TrimSuffix(s, "%")
	mean, err1 := strconv.ParseFloat(m, 64)
	sd, err2 := strconv.ParseFloat(s, 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("cell %q: bad mean/sd", cell)
	}
	return mean, sd, pct
}

// The randomized differential guarantee of the streaming campaign:
// per-cell Welford aggregation renders what the retained two-pass
// oracle (AggregateSeedTables) renders — verbatim cells and varies(n)
// exactly, numeric cells within one formatting quantum (Welford and
// two-pass differ in floating-point rounding, never more) — on tables
// mixing numeric, percent, categorical, non-finite and missing cells.
func TestSweepStreamMatchesRetainedOracle(t *testing.T) {
	for structSeed := int64(1); structSeed <= 5; structSeed++ {
		e := randomTableArm(structSeed, 6, 5)
		seeds := make([]int64, 40)
		for i := range seeds {
			seeds[i] = int64(i + 1)
		}

		tables := make([]Table, len(seeds))
		for i, s := range seeds {
			tables[i] = e.Run(Options{Seed: s})
		}
		oracle := AggregateSeedTables(tables, seeds)

		stream, err := SweepSeedsStream(e, Options{}, seeds, 4, CampaignConfig{})
		if err != nil {
			t.Fatal(err)
		}

		if len(stream.Rows) != len(oracle.Rows) {
			t.Fatalf("structSeed %d: rows %d vs oracle %d", structSeed, len(stream.Rows), len(oracle.Rows))
		}
		for r := range oracle.Rows {
			for c := range oracle.Rows[r] {
				oc, sc := oracle.Cell(r, c), stream.Cell(r, c)
				if !strings.Contains(oc, "±") {
					// Verbatim and varies(n) cells must match exactly.
					if sc != oc {
						t.Errorf("structSeed %d cell (%d,%d): stream %q, oracle %q", structSeed, r, c, sc, oc)
					}
					continue
				}
				om, osd, opct := parseMeanSD(t, oc)
				sm, ssd, spct := parseMeanSD(t, sc)
				if math.Abs(om-sm) > 0.011 || math.Abs(osd-ssd) > 0.011 || opct != spct {
					t.Errorf("structSeed %d cell (%d,%d): stream %q vs oracle %q", structSeed, r, c, sc, oc)
				}
				if !strings.Contains(sc, fmt.Sprintf("[n=%d, ci=", len(seeds))) {
					t.Errorf("structSeed %d cell (%d,%d): missing [n, ci] annotation: %q", structSeed, r, c, sc)
				}
			}
		}
	}
}

// Streaming must be independent of the worker count: the fold happens
// in seed order whatever order jobs complete in.
func TestSweepStreamWorkerCountInvariant(t *testing.T) {
	e := randomTableArm(7, 4, 4)
	seeds := []int64{3, 5, 9, 11, 20, 21, 22, 30}
	serial, err := SweepSeedsStream(e, Options{}, seeds, 1, CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SweepSeedsStream(e, Options{}, seeds, 8, CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Render() != parallel.Render() {
		t.Errorf("streaming sweep differs between 1 and 8 workers:\n%s\nvs\n%s",
			serial.Render(), parallel.Render())
	}
	if !strings.Contains(serial.Note, "3..30 (8 seeds, sparse)") {
		t.Errorf("sparse seed span missing from note: %q", serial.Note)
	}
}

// The kill-and-resume differential: a campaign aborted mid-flight and
// resumed from its checkpoint must render the byte-identical table of
// an uninterrupted campaign over the same seeds — on a real quick-arm
// experiment, through the real checkpoint file.
func TestSweepStreamKillAndResumeByteIdentical(t *testing.T) {
	e, ok := ExperimentByID("E1")
	if !ok {
		t.Fatal("E1 missing")
	}
	opt := Options{Quick: true}
	seeds := make([]int64, 12)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}

	uninterrupted, err := SweepSeedsStream(e, opt, seeds, 2, CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "campaign.json")
	kill := fmt.Errorf("simulated kill")
	_, err = SweepSeedsStream(e, opt, seeds, 2, CampaignConfig{
		Checkpoint: ckpt,
		Every:      4,
		OnFold: func(done, total int) error {
			if done >= 6 {
				return kill
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("aborted campaign should report the abort")
	}

	// The checkpoint must hold the last periodic write (4 folds), not
	// the abort point — exactly what a SIGKILL would have left.
	c, err := artifact.ReadCampaign(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if c.Completed != 4 {
		t.Fatalf("checkpoint completed = %d, want 4", c.Completed)
	}

	resumed, err := SweepSeedsStream(e, opt, seeds, 2, CampaignConfig{
		Checkpoint: ckpt, Every: 4, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Render() != uninterrupted.Render() {
		t.Errorf("resumed table differs from uninterrupted:\n%s\nvs\n%s",
			resumed.Render(), uninterrupted.Render())
	}

	// The completion checkpoint makes a re-resume a no-op campaign
	// that still renders identically without re-running any seed.
	again, err := SweepSeedsStream(e, opt, seeds, 2, CampaignConfig{
		Checkpoint: ckpt, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.Render() != uninterrupted.Render() {
		t.Error("resume of a completed campaign differs")
	}
}

// Kill-and-resume across the warm/cold rig boundary: a campaign that
// folds its first seeds on pool-served warm rigs (Options.ReuseRigs),
// dies, and resumes on fresh-construction cold rigs must still render
// byte-identically to an uninterrupted all-cold campaign. The rig
// source is an operational knob, so a checkpoint written by one must
// be seamlessly continuable by the other — E19 is the arm because its
// per-seed cell actually goes through the warm-rig pool.
func TestSweepStreamKillResumeWarmColdMix(t *testing.T) {
	e, ok := ExperimentByID("E19")
	if !ok {
		t.Fatal("E19 missing")
	}
	opt := Options{Quick: true}
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}

	uninterrupted, err := SweepSeedsStream(e, opt, seeds, 2, CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}

	warmOpt := opt
	warmOpt.ReuseRigs = true
	ckpt := filepath.Join(t.TempDir(), "campaign.json")
	_, err = SweepSeedsStream(e, warmOpt, seeds, 2, CampaignConfig{
		Checkpoint: ckpt,
		Every:      2,
		OnFold: func(done, total int) error {
			if done >= 4 {
				return fmt.Errorf("simulated kill")
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("aborted campaign should report the abort")
	}

	resumed, err := SweepSeedsStream(e, opt, seeds, 2, CampaignConfig{
		Checkpoint: ckpt, Every: 2, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Render() != uninterrupted.Render() {
		t.Errorf("warm-then-cold resumed table differs from all-cold uninterrupted:\n%s\nvs\n%s",
			resumed.Render(), uninterrupted.Render())
	}
}

// A checkpoint from a different campaign must be rejected, not folded
// into incompatible statistics.
func TestSweepStreamResumeValidation(t *testing.T) {
	e := syntheticArm(3, 3)
	seeds := []int64{1, 2, 3, 4}
	ckpt := filepath.Join(t.TempDir(), "campaign.json")
	if _, err := SweepSeedsStream(e, Options{}, seeds, 1, CampaignConfig{
		Checkpoint: ckpt, Every: 2,
	}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		e     Experiment
		opt   Options
		seeds []int64
	}{
		{"different experiment", randomTableArm(1, 3, 3), Options{}, seeds},
		{"different quick", e, Options{Quick: true}, seeds},
		{"different shards", e, Options{Shards: 4}, seeds},
		{"different seed count", e, Options{}, []int64{1, 2, 3}},
		{"different seed list", e, Options{}, []int64{1, 2, 3, 5}},
	}
	for _, tc := range cases {
		if _, err := SweepSeedsStream(tc.e, tc.opt, tc.seeds, 1, CampaignConfig{
			Checkpoint: ckpt, Resume: true,
		}); err == nil {
			t.Errorf("%s: resume should reject mismatched checkpoint", tc.name)
		}
	}
	// Resume with no checkpoint file yet is a fresh campaign.
	fresh := filepath.Join(t.TempDir(), "missing.json")
	if _, err := SweepSeedsStream(e, Options{}, seeds, 1, CampaignConfig{
		Checkpoint: fresh, Resume: true,
	}); err != nil {
		t.Errorf("resume without an existing checkpoint should start fresh: %v", err)
	}
}

// The memory claim of the tentpole, at campaign scale: a 10⁵-seed
// streaming sweep holds O(rows×cols) state — peak live heap during the
// campaign stays under a pinned budget that is independent of the
// seed count — while the retained path's live set grows linearly with
// the seed count (shown at 10k vs 20k tables).
func TestSweepStreamMemoryFlatAt1e5Seeds(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-seed campaign: skipped with -short")
	}
	e := syntheticArm(8, 6)
	seeds := make([]int64, 100_000)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}

	heapNow := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	base := heapNow()

	var peak uint64
	table, err := SweepSeedsStream(e, Options{}, seeds, 4, CampaignConfig{
		OnFold: func(done, total int) error {
			if done%20_000 == 0 {
				if h := heapNow(); h > peak {
					peak = h
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 8 || !strings.Contains(table.Cell(0, 1), "[n=100000, ci=") {
		t.Fatalf("campaign table wrong:\n%s", table.Render())
	}

	// Budget: the accumulator grid is 48 cells; 32 MiB of slack is
	// orders of magnitude above O(rows×cols) state and orders of
	// magnitude below what retaining 10⁵ tables costs (~hundreds of
	// MiB, see the linear-growth measurement below).
	const budget = 32 << 20
	grew := int64(peak) - int64(base)
	if grew > budget {
		t.Errorf("streaming campaign peak heap grew %d MiB, budget %d MiB",
			grew>>20, budget>>20)
	}

	// The retained path: live heap while holding n tables (what
	// SweepSeeds accumulates before aggregating) grows linearly in n.
	retained := func(n int) uint64 {
		tables := make([]Table, n)
		for i := range tables {
			tables[i] = e.Run(Options{Seed: int64(i + 1)})
		}
		h := heapNow()
		runtime.KeepAlive(tables)
		return h
	}
	before := heapNow()
	at10k := retained(10_000) - before
	at20k := retained(20_000) - before
	if at20k < at10k*3/2 {
		t.Errorf("retained path should grow linearly: 10k tables = %d KiB, 20k tables = %d KiB",
			at10k>>10, at20k>>10)
	}
	t.Logf("streaming peak: +%d KiB over baseline at 100k seeds; retained live set: %d KiB at 10k, %d KiB at 20k",
		grew>>10, at10k>>10, at20k>>10)
}

// The campaign/v1 round trip preserves the accumulator exactly: a
// state serialized mid-campaign and reloaded folds the remaining
// seeds to the byte-identical table (the unit-level core of the
// kill-and-resume guarantee, without the pool).
func TestCampaignStateRoundTrip(t *testing.T) {
	e := randomTableArm(3, 5, 4)
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}

	full := &campaignState{}
	for _, s := range seeds {
		full.fold(e.Run(Options{Seed: s}))
	}

	half := &campaignState{}
	for _, s := range seeds[:4] {
		half.fold(e.Run(Options{Seed: s}))
	}
	path := filepath.Join(t.TempDir(), "c.json")
	if err := artifact.WriteCampaign(path, half.toCampaign(e, Options{}, seeds)); err != nil {
		t.Fatal(err)
	}
	c, err := artifact.ReadCampaign(path)
	if err != nil {
		t.Fatal(err)
	}
	reloaded := stateFromCampaign(c)
	for _, s := range seeds[4:] {
		reloaded.fold(e.Run(Options{Seed: s}))
	}
	if got, want := reloaded.render(seeds).Render(), full.render(seeds).Render(); got != want {
		t.Errorf("round-tripped state renders differently:\n%s\nvs\n%s", got, want)
	}
}

// The distinct-set cap: a divergent non-numeric cell with more
// distinct values than the cap renders the capped marker instead of
// growing O(seeds) state.
func TestCellAccumDistinctCap(t *testing.T) {
	c := newCellAccum()
	for i := 0; i < distinctCap+10; i++ {
		c.add(fmt.Sprintf("mode-%d", i))
	}
	if got := c.render(); got != fmt.Sprintf("varies(%d+)", distinctCap) {
		t.Errorf("overflowed cell renders %q", got)
	}
	if len(c.distinct) > distinctCap {
		t.Errorf("distinct set grew past the cap: %d", len(c.distinct))
	}
}

// TestSweepStreamDrainCheckpointsFoldedState is the graceful-drain
// counterpart of the kill test above: an OnFold abort that wraps
// ErrCampaignDrain gets a *final* checkpoint at the abort point — no
// folded seed is lost — where a plain abort keeps SIGKILL semantics
// (only the last periodic write survives).
func TestSweepStreamDrainCheckpointsFoldedState(t *testing.T) {
	e, ok := ExperimentByID("E1")
	if !ok {
		t.Fatal("E1 missing")
	}
	opt := Options{Quick: true}
	seeds := make([]int64, 12)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}

	uninterrupted, err := SweepSeedsStream(e, opt, seeds, 2, CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Every=1000 never checkpoints periodically: whatever the
	// checkpoint holds after the abort was written by the drain path.
	ckpt := filepath.Join(t.TempDir(), "campaign.json")
	_, err = SweepSeedsStream(e, opt, seeds, 2, CampaignConfig{
		Checkpoint: ckpt,
		Every:      1000,
		OnFold: func(done, total int) error {
			if done >= 5 {
				return fmt.Errorf("shutting down: %w", ErrCampaignDrain)
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("drained campaign should report the abort")
	}

	c, err := artifact.ReadCampaign(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if c.Completed != 5 {
		t.Fatalf("drain checkpoint completed = %d, want 5 (the abort point)", c.Completed)
	}

	resumed, err := SweepSeedsStream(e, opt, seeds, 2, CampaignConfig{
		Checkpoint: ckpt, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Render() != uninterrupted.Render() {
		t.Errorf("drained-and-resumed table differs from uninterrupted:\n%s\nvs\n%s",
			resumed.Render(), uninterrupted.Render())
	}
}
