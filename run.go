package coopmrm

import (
	"context"

	"coopmrm/internal/runner"
)

// RunSet runs the given experiments/ablations, fanning across at most
// parallel workers (parallel <= 0 means one per CPU, 1 means serial),
// and returns their tables in input order regardless of completion
// order. Each job receives its own copy of opt and builds its own
// engine and RNG from Options.Seed, so the output is byte-identical to
// the serial path for any worker count. A panicking experiment is
// reported as a *runner.PanicError.
func RunSet(es []Experiment, opt Options, parallel int) ([]Table, error) {
	return runner.Map(context.Background(), parallel, len(es), func(_ context.Context, i int) (Table, error) {
		return es[i].Run(opt), nil
	})
}

// WithSeed returns a copy of o using the given seed. Jobs must never
// share an Options value by pointer; this is the per-job plumbing used
// by seed sweeps.
func (o Options) WithSeed(seed int64) Options {
	o.Seed = seed
	return o
}

// DeriveSeed decorrelates a per-job seed from a base seed and a job
// index using a splitmix64 step, so derived streams never collide with
// each other or with the base stream itself.
func DeriveSeed(base int64, job int) int64 {
	z := uint64(base) + (uint64(job)+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	s := int64(z)
	if s == 0 { // Options treats 0 as "use default"; avoid it.
		s = 1
	}
	return s
}
