package coopmrm

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"coopmrm/internal/artifact"
)

// goldenExperiments mirrors cmd/goldenbundles: E6 covers the
// status-sharing comm path, E14 every interaction class.
var goldenExperiments = []string{"E6", "E14"}

// The differential guarantee of the chaos-hardened comm stack: with
// every chaos knob at zero (no reorder, no duplication, no partitions)
// the experiments must reproduce the PRE-change artifact bundles
// byte for byte. The goldens under testdata/golden-zero-chaos were
// generated at the commit before the delivery-time re-check landed;
// a diff here means the "fix" changed healthy-channel behaviour, not
// just faulty-channel behaviour. Regenerate via cmd/goldenbundles only
// for an intentional, documented behaviour change.
func TestZeroChaosBundlesMatchGolden(t *testing.T) {
	goldenDir := filepath.Join("testdata", "golden-zero-chaos")
	if _, err := os.Stat(goldenDir); err != nil {
		t.Fatalf("golden bundles missing: %v (run go run ./cmd/goldenbundles)", err)
	}

	var es []Experiment
	for _, id := range goldenExperiments {
		e, ok := ExperimentByID(id)
		if !ok {
			t.Fatalf("unknown golden experiment %q", id)
		}
		es = append(es, e)
	}
	results, err := RunSetWithArtifacts(es, Options{Seed: 1, Quick: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotDir := t.TempDir()
	for _, res := range results {
		b := artifact.Bundle{
			Table: artifact.Table{
				ID: res.Table.ID, Title: res.Table.Title, Paper: res.Table.Paper,
				Note: res.Table.Note, Header: res.Table.Header, Rows: res.Table.Rows,
			},
			Runs: res.Runs,
		}
		if err := artifact.WriteBundle(gotDir, b); err != nil {
			t.Fatal(err)
		}
	}

	wantFiles := listFiles(t, goldenDir)
	gotFiles := listFiles(t, gotDir)
	if len(wantFiles) == 0 {
		t.Fatal("golden directory is empty")
	}
	// Same file sets in both directions: a bundle gaining or losing a
	// file is as much a drift as changed bytes.
	for _, f := range gotFiles {
		if _, ok := find(wantFiles, f); !ok {
			t.Errorf("extra file not in golden: %s", f)
		}
	}
	for _, f := range wantFiles {
		if _, ok := find(gotFiles, f); !ok {
			t.Errorf("golden file not regenerated: %s", f)
			continue
		}
		want, err := os.ReadFile(filepath.Join(goldenDir, f))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(gotDir, f))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: bytes differ from the pre-change golden (%d vs %d bytes)",
				f, len(got), len(want))
		}
	}
}

func listFiles(t *testing.T, root string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		out = append(out, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

func find(sorted []string, s string) (int, bool) {
	i := sort.SearchStrings(sorted, s)
	return i, i < len(sorted) && sorted[i] == s
}
