// Command goldenbundles regenerates the zero-chaos golden artifact
// bundles under testdata/golden-zero-chaos. The golden bytes are the
// differential baseline for TestZeroChaosBundlesMatchGolden: they were
// produced by the pre-chaos comm stack and must stay byte-identical
// under a zero-chaos NetConfig (no reorder, no duplication, no
// partitions). Regenerate them ONLY when an intentional,
// behaviour-changing change to the experiments or the artifact schema
// is being made — never to paper over an accidental diff.
//
// Usage: go run ./cmd/goldenbundles [dir]
package main

import (
	"fmt"
	"os"

	coopmrm "coopmrm"
	"coopmrm/internal/artifact"
)

// GoldenExperiments are the experiments locked by the golden bundles:
// E6 exercises the status-sharing comm path, E14 runs every
// interaction class (so every policy's message traffic is covered).
var GoldenExperiments = []string{"E6", "E14"}

func main() {
	dir := "testdata/golden-zero-chaos"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	var es []coopmrm.Experiment
	for _, id := range GoldenExperiments {
		e, ok := coopmrm.ExperimentByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(1)
		}
		es = append(es, e)
	}
	results, err := coopmrm.RunSetWithArtifacts(es, coopmrm.Options{Seed: 1, Quick: true}, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, res := range results {
		b := artifact.Bundle{
			Table: artifact.Table{
				ID: res.Table.ID, Title: res.Table.Title, Paper: res.Table.Paper,
				Note: res.Table.Note, Header: res.Table.Header, Rows: res.Table.Rows,
			},
			Runs: res.Runs,
		}
		if err := artifact.WriteBundle(dir, b); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("wrote golden bundles for %v under %s\n", GoldenExperiments, dir)
}
