package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func output(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

// The CLI-level determinism guarantee: -parallel 8 is byte-identical
// to -parallel 1 across experiments, ablations, and output formats.
func TestParallelOutputByteIdentical(t *testing.T) {
	for _, tc := range [][]string{
		{"-quick"},
		{"-quick", "-ablations"},
		{"-quick", "-run", "E1,E3,A1", "-format", "csv"},
		{"-quick", "-run", "E5", "-format", "markdown"},
	} {
		serial := output(t, append([]string{"-parallel", "1"}, tc...)...)
		parallel := output(t, append([]string{"-parallel", "8"}, tc...)...)
		if serial != parallel {
			t.Errorf("args %v: parallel output differs from serial", tc)
		}
		if len(serial) == 0 {
			t.Errorf("args %v: no output", tc)
		}
	}
}

func TestSeedSweepOutput(t *testing.T) {
	serial := output(t, "-quick", "-run", "E1", "-seeds", "1..4", "-parallel", "1")
	parallel := output(t, "-quick", "-run", "E1", "-seeds", "1..4", "-parallel", "4")
	if serial != parallel {
		t.Error("seed sweep differs between worker counts")
	}
	if !strings.Contains(serial, "aggregated over 4 seeds") {
		t.Errorf("sweep note missing:\n%s", serial)
	}
}

func TestRunList(t *testing.T) {
	out := output(t, "-list")
	for _, id := range []string{"E1", "E15", "A1", "A5"} {
		if !strings.Contains(out, id+" ") {
			t.Errorf("-list missing %s", id)
		}
	}
}

func TestRunSingleQuick(t *testing.T) {
	if out := output(t, "-run", "E13", "-quick"); !strings.Contains(out, "E13") {
		t.Errorf("output = %q", out)
	}
}

func TestRunAblationByID(t *testing.T) {
	if out := output(t, "-run", "A4", "-quick"); !strings.Contains(out, "A4") {
		t.Errorf("output = %q", out)
	}
}

// readTree maps relative path -> file bytes for every file under dir.
func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	files := map[string]string{}
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, _ := filepath.Rel(dir, path)
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		files[rel] = string(data)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// The artifact-level determinism guarantee: -out bundles are
// byte-identical between -parallel 1 and -parallel 8; only bench.json
// (wall-clock accounting) may differ.
func TestOutBundlesByteIdenticalAcrossWorkers(t *testing.T) {
	serialDir := t.TempDir()
	parallelDir := t.TempDir()
	output(t, "-quick", "-run", "E1,E2,E6", "-parallel", "1", "-out", serialDir)
	output(t, "-quick", "-run", "E1,E2,E6", "-parallel", "8", "-out", parallelDir)

	serial := readTree(t, serialDir)
	parallel := readTree(t, parallelDir)
	if len(serial) != len(parallel) {
		t.Fatalf("file sets differ: %d vs %d", len(serial), len(parallel))
	}
	bundles := 0
	for name, content := range serial {
		if filepath.Base(name) == "bench.json" {
			continue
		}
		bundles++
		if parallel[name] != content {
			t.Errorf("%s differs between -parallel 1 and -parallel 8", name)
		}
	}
	if bundles == 0 {
		t.Fatal("no bundle files written")
	}
}

// bench.json must exist, parse, and account for every selected
// experiment; the seed sweep variant threads the seed count through.
func TestOutWritesBench(t *testing.T) {
	dir := t.TempDir()
	out := output(t, "-quick", "-run", "E6", "-seeds", "1..2", "-parallel", "2", "-out", dir)
	if !strings.Contains(out, "bench.json") {
		t.Errorf("missing artifact confirmation line:\n%s", out)
	}
	var bench struct {
		Schema      string  `json:"schema"`
		Parallel    int     `json:"parallel"`
		Seeds       int     `json:"seeds"`
		Quick       bool    `json:"quick"`
		WallSeconds float64 `json:"wall_seconds"`
		Experiments []struct {
			ID   string `json:"id"`
			Runs int    `json:"runs"`
			Rows int    `json:"rows"`
		} `json:"experiments"`
	}
	data, err := os.ReadFile(filepath.Join(dir, "bench.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatal(err)
	}
	if bench.Schema != "coopmrm/bench/v1" || bench.Parallel != 2 ||
		bench.Seeds != 2 || !bench.Quick || bench.WallSeconds <= 0 {
		t.Errorf("bench header wrong: %+v", bench)
	}
	if len(bench.Experiments) != 1 || bench.Experiments[0].ID != "E6" ||
		bench.Experiments[0].Runs != 4 || bench.Experiments[0].Rows == 0 {
		t.Errorf("bench experiments wrong: %+v", bench.Experiments)
	}
	// The sweep prefixes run names with the seed.
	runs, err := os.ReadFile(filepath.Join(dir, "E6", "runs.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(runs), `"seed=2/policy=baseline"`) {
		t.Errorf("seed-prefixed run names missing:\n%s", runs)
	}
}

// The profiling hooks produce non-empty files that the standard tools
// recognise (pprof files are gzipped protos, the exec trace has a
// magic header).
func TestProfilingFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	exec := filepath.Join(dir, "exec.trace")
	output(t, "-quick", "-run", "E1", "-cpuprofile", cpu, "-memprofile", mem, "-exectrace", exec)
	for _, path := range []string{cpu, mem, exec} {
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
	trace, err := os.ReadFile(exec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(trace, []byte("go 1.")) {
		t.Errorf("exec trace header wrong: %q", trace[:min(16, len(trace))])
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E99"}, &buf); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-run", "E13", "-quick", "-format", "xml"}, &buf); err == nil {
		t.Error("unknown format should error")
	}
	if err := run([]string{"-seeds", "5..1"}, &buf); err == nil {
		t.Error("bad seed spec should error")
	}
}

// The streaming path renders the campaign annotation and is
// byte-identical across worker counts, like every other output path.
func TestStreamOutput(t *testing.T) {
	serial := output(t, "-quick", "-run", "E1", "-seeds", "1..4", "-parallel", "1", "-stream")
	parallel := output(t, "-quick", "-run", "E1", "-seeds", "1..4", "-parallel", "4", "-stream")
	if serial != parallel {
		t.Error("streaming sweep differs between worker counts")
	}
	if !strings.Contains(serial, "aggregated over 4 seeds") ||
		!strings.Contains(serial, "95% CI half-width") {
		t.Errorf("campaign note missing:\n%s", serial)
	}
	if !strings.Contains(serial, "[n=4, ci=") && !strings.Contains(serial, "±") {
		t.Errorf("no aggregated cells rendered:\n%s", serial)
	}
}

// The full CLI-level kill-and-resume contract: a campaign aborted
// mid-flight by -abort-after resumes from its checkpoint and renders
// byte-identically to the uninterrupted run.
func TestStreamCheckpointResumeByteIdentical(t *testing.T) {
	uninterrupted := output(t, "-quick", "-run", "E1", "-seeds", "1..6", "-parallel", "2", "-stream")

	ckpt := filepath.Join(t.TempDir(), "campaign.json")
	var buf bytes.Buffer
	err := run([]string{"-quick", "-run", "E1", "-seeds", "1..6", "-parallel", "2",
		"-stream", "-checkpoint", ckpt, "-checkpoint-every", "2", "-abort-after", "3"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "abort-after") {
		t.Fatalf("aborted campaign must surface the abort: %v", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint survived the abort: %v", err)
	}

	resumed := output(t, "-quick", "-run", "E1", "-seeds", "1..6", "-parallel", "2",
		"-stream", "-checkpoint", ckpt, "-checkpoint-every", "2", "-resume")
	if resumed != uninterrupted {
		t.Errorf("resumed output differs from uninterrupted:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s",
			resumed, uninterrupted)
	}
}

// Streaming -out writes bundles with capped run capture plus the
// per-seed wall statistics that feed the variance-aware bench gate.
func TestStreamOutWritesBenchStats(t *testing.T) {
	dir := t.TempDir()
	out := output(t, "-quick", "-run", "E6", "-seeds", "1..4", "-parallel", "2",
		"-stream", "-out", dir)
	if !strings.Contains(out, "bench.json") {
		t.Errorf("missing artifact confirmation line:\n%s", out)
	}
	data, err := os.ReadFile(filepath.Join(dir, "bench.json"))
	if err != nil {
		t.Fatal(err)
	}
	var bench struct {
		Experiments []struct {
			ID            string  `json:"id"`
			WallSdSeconds float64 `json:"wall_sd_seconds"`
			WallSamples   int     `json:"wall_samples"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(data, &bench); err != nil {
		t.Fatal(err)
	}
	if len(bench.Experiments) != 1 || bench.Experiments[0].ID != "E6" ||
		bench.Experiments[0].WallSamples != 4 {
		t.Errorf("bench experiments wrong: %+v", bench.Experiments)
	}
	// Capture is capped to the first streamed seeds; the seed-prefixed
	// run names must still be there for those.
	runs, err := os.ReadFile(filepath.Join(dir, "E6", "runs.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(runs), `"seed=1/policy=baseline"`) {
		t.Errorf("seed-prefixed run names missing:\n%s", runs)
	}
}

func TestStreamFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-stream", "-quick", "-run", "E1"}, &buf); err == nil {
		t.Error("-stream without -seeds should error")
	}
	if err := run([]string{"-quick", "-run", "E1", "-seeds", "1..2", "-checkpoint", "x.json"}, &buf); err == nil {
		t.Error("-checkpoint without -stream should error")
	}
	if err := run([]string{"-quick", "-run", "E1", "-seeds", "1..2", "-resume"}, &buf); err == nil {
		t.Error("-resume without -stream should error")
	}
	if err := run([]string{"-quick", "-run", "E1,E2", "-seeds", "1..2", "-stream",
		"-checkpoint", "x.json"}, &buf); err == nil {
		t.Error("-checkpoint with two experiments should error")
	}
}
