package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownID(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunSingleQuick(t *testing.T) {
	if err := run([]string{"-run", "E13", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAblationByID(t *testing.T) {
	if err := run([]string{"-run", "A4", "-quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFormats(t *testing.T) {
	for _, f := range []string{"csv", "markdown"} {
		if err := run([]string{"-run", "E13", "-quick", "-format", f}); err != nil {
			t.Errorf("format %s: %v", f, err)
		}
	}
	if err := run([]string{"-run", "E13", "-quick", "-format", "xml"}); err == nil {
		t.Error("unknown format should error")
	}
}
