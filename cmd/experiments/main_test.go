package main

import (
	"bytes"
	"strings"
	"testing"
)

func output(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

// The CLI-level determinism guarantee: -parallel 8 is byte-identical
// to -parallel 1 across experiments, ablations, and output formats.
func TestParallelOutputByteIdentical(t *testing.T) {
	for _, tc := range [][]string{
		{"-quick"},
		{"-quick", "-ablations"},
		{"-quick", "-run", "E1,E3,A1", "-format", "csv"},
		{"-quick", "-run", "E5", "-format", "markdown"},
	} {
		serial := output(t, append([]string{"-parallel", "1"}, tc...)...)
		parallel := output(t, append([]string{"-parallel", "8"}, tc...)...)
		if serial != parallel {
			t.Errorf("args %v: parallel output differs from serial", tc)
		}
		if len(serial) == 0 {
			t.Errorf("args %v: no output", tc)
		}
	}
}

func TestSeedSweepOutput(t *testing.T) {
	serial := output(t, "-quick", "-run", "E1", "-seeds", "1..4", "-parallel", "1")
	parallel := output(t, "-quick", "-run", "E1", "-seeds", "1..4", "-parallel", "4")
	if serial != parallel {
		t.Error("seed sweep differs between worker counts")
	}
	if !strings.Contains(serial, "aggregated over 4 seeds") {
		t.Errorf("sweep note missing:\n%s", serial)
	}
}

func TestRunList(t *testing.T) {
	out := output(t, "-list")
	for _, id := range []string{"E1", "E15", "A1", "A5"} {
		if !strings.Contains(out, id+" ") {
			t.Errorf("-list missing %s", id)
		}
	}
}

func TestRunSingleQuick(t *testing.T) {
	if out := output(t, "-run", "E13", "-quick"); !strings.Contains(out, "E13") {
		t.Errorf("output = %q", out)
	}
}

func TestRunAblationByID(t *testing.T) {
	if out := output(t, "-run", "A4", "-quick"); !strings.Contains(out, "A4") {
		t.Errorf("output = %q", out)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E99"}, &buf); err == nil {
		t.Error("unknown experiment should error")
	}
	if err := run([]string{"-run", "E13", "-quick", "-format", "xml"}, &buf); err == nil {
		t.Error("unknown format should error")
	}
	if err := run([]string{"-seeds", "5..1"}, &buf); err == nil {
		t.Error("bad seed spec should error")
	}
}
