// Command experiments regenerates every table and figure of the paper
// as simulation outputs (the E1..E15 index in DESIGN.md).
//
// Usage:
//
//	experiments [-run E3,E5] [-quick] [-seed 7] [-list]
//	            [-parallel N] [-seeds 1..32] [-format text|csv|markdown]
//
// Jobs fan out across a bounded worker pool (-parallel, default one
// worker per CPU); output is emitted in index order and is
// byte-identical to the serial path (-parallel 1) for any worker
// count. -seeds runs each selected experiment once per seed and
// aggregates the per-seed tables (numeric cells become mean±sd).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"coopmrm"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runIDs := fs.String("run", "", "comma-separated experiment/ablation IDs (default: all experiments)")
	quick := fs.Bool("quick", false, "shrink sweeps and horizons")
	seed := fs.Int64("seed", 1, "simulation seed")
	list := fs.Bool("list", false, "list experiments and exit")
	ablations := fs.Bool("ablations", false, "run the design ablations (A1..A5) instead of the experiments")
	format := fs.String("format", "text", "output format: text | csv | markdown")
	parallel := fs.Int("parallel", runtime.NumCPU(), "worker pool size; 1 runs serially, output is identical either way")
	seeds := fs.String("seeds", "", `seed sweep: "1..32", "3,5,9", or "x8" (derived from -seed); aggregates per-seed tables`)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range append(coopmrm.AllExperiments(), coopmrm.AllAblations()...) {
			fmt.Fprintf(stdout, "%-4s %-55s reproduces %s\n", e.ID, e.Title, e.Paper)
		}
		return nil
	}

	selected := coopmrm.AllExperiments()
	if *ablations {
		selected = coopmrm.AllAblations()
	}
	if *runIDs != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := coopmrm.ExperimentByID(id)
			if !ok {
				e, ok = coopmrm.AblationByID(id)
			}
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, e)
		}
	}

	render := func(table coopmrm.Table) error {
		switch *format {
		case "text":
			fmt.Fprintln(stdout, table.Render())
		case "csv":
			fmt.Fprintf(stdout, "# %s — %s\n%s\n", table.ID, table.Title, table.CSV())
		case "markdown":
			fmt.Fprintln(stdout, table.Markdown())
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
		return nil
	}

	opt := coopmrm.Options{Seed: *seed, Quick: *quick}

	if *seeds != "" {
		seedList, err := coopmrm.ParseSeedSpec(*seeds, *seed)
		if err != nil {
			return err
		}
		for _, e := range selected {
			table, err := coopmrm.SweepSeeds(e, opt, seedList, *parallel)
			if err != nil {
				return err
			}
			if err := render(table); err != nil {
				return err
			}
		}
		return nil
	}

	tables, err := coopmrm.RunSet(selected, opt, *parallel)
	if err != nil {
		return err
	}
	for _, table := range tables {
		if err := render(table); err != nil {
			return err
		}
	}
	return nil
}
