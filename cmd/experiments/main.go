// Command experiments regenerates every table and figure of the paper
// as simulation outputs (the E1..E15 index in DESIGN.md).
//
// Usage:
//
//	experiments [-run E3,E5] [-quick] [-seed 7] [-list]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"coopmrm"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runIDs := fs.String("run", "", "comma-separated experiment/ablation IDs (default: all experiments)")
	quick := fs.Bool("quick", false, "shrink sweeps and horizons")
	seed := fs.Int64("seed", 1, "simulation seed")
	list := fs.Bool("list", false, "list experiments and exit")
	ablations := fs.Bool("ablations", false, "run the design ablations (A1..A5) instead of the experiments")
	format := fs.String("format", "text", "output format: text | csv | markdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range append(coopmrm.AllExperiments(), coopmrm.AllAblations()...) {
			fmt.Printf("%-4s %-55s reproduces %s\n", e.ID, e.Title, e.Paper)
		}
		return nil
	}

	selected := coopmrm.AllExperiments()
	if *ablations {
		selected = coopmrm.AllAblations()
	}
	if *runIDs != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := coopmrm.ExperimentByID(id)
			if !ok {
				e, ok = coopmrm.AblationByID(id)
			}
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, e)
		}
	}

	opt := coopmrm.Options{Seed: *seed, Quick: *quick}
	for _, e := range selected {
		table := e.Run(opt)
		switch *format {
		case "text":
			fmt.Println(table.Render())
		case "csv":
			fmt.Printf("# %s — %s\n%s\n", table.ID, table.Title, table.CSV())
		case "markdown":
			fmt.Println(table.Markdown())
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	return nil
}
