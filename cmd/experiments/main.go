// Command experiments regenerates every table and figure of the paper
// as simulation outputs (the E1..E20 index in DESIGN.md).
//
// Usage:
//
//	experiments [-run E3,E5] [-quick] [-seed 7] [-list]
//	            [-parallel N] [-shards N] [-reuse-rigs]
//	            [-seeds 1..32] [-format text|csv|markdown]
//	            [-stream] [-checkpoint FILE] [-checkpoint-every N] [-resume]
//	            [-out DIR] [-cpuprofile FILE] [-memprofile FILE] [-exectrace FILE]
//
// Jobs fan out across a bounded worker pool (-parallel, default one
// worker per CPU); output is emitted in index order and is
// byte-identical to the serial path (-parallel 1) for any worker
// count. -seeds runs each selected experiment once per seed and
// aggregates the per-seed tables (numeric cells become mean±sd).
//
// -stream switches the seed sweep to the streaming campaign path:
// per-seed tables fold into per-cell Welford accumulators in seed
// order as jobs complete, so memory is O(rows×cols) regardless of the
// seed count, and aggregated numeric cells render as
// "mean±sd [n=…, ci=…]" (Bessel-corrected sd, 95% CI half-width).
// -checkpoint FILE writes a campaign/v1 checkpoint atomically every
// -checkpoint-every folded seeds; -resume continues an interrupted
// campaign from the checkpoint, and the resumed table is
// byte-identical to an uninterrupted run. -abort-after is the testing
// hook that exercises exactly that path.
//
// -out writes one machine-readable artifact bundle per experiment
// (table.json, runs.json, events/*.jsonl, trace/*.jsonl — see
// EXPERIMENTS.md for the schema) plus a run-level bench.json with the
// wall-clock accounting. Bundle bytes depend only on the selected
// experiments and seeds, never on -parallel; bench.json is the one
// intentionally non-deterministic file.
//
// The profiling flags wire the standard Go tooling through the runner:
// -cpuprofile and -memprofile write runtime/pprof profiles (inspect
// with `go tool pprof`), -exectrace writes a runtime/trace stream
// (inspect with `go tool trace`).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"

	"coopmrm"
	"coopmrm/internal/artifact"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	runIDs := fs.String("run", "", "comma-separated experiment/ablation IDs (default: all experiments)")
	quick := fs.Bool("quick", false, "shrink sweeps and horizons")
	seed := fs.Int64("seed", 1, "simulation seed")
	list := fs.Bool("list", false, "list experiments and exit")
	ablations := fs.Bool("ablations", false, "run the design ablations (A1..A5) instead of the experiments")
	format := fs.String("format", "text", "output format: text | csv | markdown")
	parallel := fs.Int("parallel", runtime.NumCPU(), "worker pool size; 1 runs serially, output is identical either way")
	shards := fs.Int("shards", 0, "worker goroutines per scenario rig (sharded tick engine); <=1 runs sequentially, output is identical either way")
	reuseRigs := fs.Bool("reuse-rigs", false, "serve campaign rigs from the warm-rig pool (snapshot/reset) instead of constructing per seed; output is identical either way")
	seeds := fs.String("seeds", "", `seed sweep: "1..32", "3,5,9", or "x8" (derived from -seed); aggregates per-seed tables`)
	stream := fs.Bool("stream", false, "streaming seed-sweep campaign: fold per-seed tables online (memory independent of seed count); aggregated cells gain [n, 95% CI half-width]. Requires -seeds")
	checkpoint := fs.String("checkpoint", "", "campaign/v1 checkpoint file for -stream: written atomically every -checkpoint-every seeds and at completion (single experiment only)")
	checkpointEvery := fs.Int("checkpoint-every", 1000, "folded seeds between checkpoint writes")
	resume := fs.Bool("resume", false, "resume a -stream campaign from -checkpoint when the file exists (must match experiment, options and seed list)")
	abortAfter := fs.Int("abort-after", 0, "testing hook: abort the streaming campaign after this many folded seeds (0 = never); exercises checkpoint/resume")
	outDir := fs.String("out", "", "write per-experiment artifact bundles and bench.json under this directory")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit (go tool pprof)")
	execTrace := fs.String("exectrace", "", "write a runtime execution trace to this file (go tool trace)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range append(coopmrm.AllExperiments(), coopmrm.AllAblations()...) {
			fmt.Fprintf(stdout, "%-4s %-55s reproduces %s\n", e.ID, e.Title, e.Paper)
		}
		return nil
	}

	stopProfiling, err := startProfiling(*cpuProfile, *memProfile, *execTrace)
	if err != nil {
		return err
	}
	defer stopProfiling()

	selected := coopmrm.AllExperiments()
	if *ablations {
		selected = coopmrm.AllAblations()
	}
	if *runIDs != "" {
		selected = selected[:0]
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := coopmrm.ExperimentByID(id)
			if !ok {
				e, ok = coopmrm.AblationByID(id)
			}
			if !ok {
				return fmt.Errorf("unknown experiment %q (try -list)", id)
			}
			selected = append(selected, e)
		}
	}

	render := func(table coopmrm.Table) error {
		switch *format {
		case "text":
			fmt.Fprintln(stdout, table.Render())
		case "csv":
			fmt.Fprintf(stdout, "# %s — %s\n%s\n", table.ID, table.Title, table.CSV())
		case "markdown":
			fmt.Fprintln(stdout, table.Markdown())
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
		return nil
	}

	opt := coopmrm.Options{Seed: *seed, Quick: *quick, Shards: *shards, ReuseRigs: *reuseRigs}

	var seedList []int64
	if *seeds != "" {
		seedList, err = coopmrm.ParseSeedSpec(*seeds, *seed)
		if err != nil {
			return err
		}
	}

	if *stream && seedList == nil {
		return fmt.Errorf("-stream requires -seeds")
	}
	if !*stream && (*checkpoint != "" || *resume || *abortAfter > 0) {
		return fmt.Errorf("-checkpoint/-resume/-abort-after require -stream")
	}
	if *checkpoint != "" && len(selected) != 1 {
		return fmt.Errorf("-checkpoint runs one campaign per file; select exactly one experiment (-run)")
	}
	var cfg coopmrm.CampaignConfig
	if *stream {
		cfg = coopmrm.CampaignConfig{
			Checkpoint: *checkpoint,
			Every:      *checkpointEvery,
			Resume:     *resume,
		}
		if *abortAfter > 0 {
			n := *abortAfter
			cfg.OnFold = func(done, total int) error {
				if done >= n {
					return fmt.Errorf("campaign aborted after %d of %d seeds (-abort-after testing hook)", done, total)
				}
				return nil
			}
		}
	}

	if *outDir != "" {
		if *stream {
			return runStreamWithArtifacts(stdout, render, selected, opt, seedList, *parallel, *seed, *outDir, cfg)
		}
		return runWithArtifacts(stdout, render, selected, opt, seedList, *parallel, *seed, *outDir)
	}

	if *stream {
		for _, e := range selected {
			table, err := coopmrm.SweepSeedsStream(e, opt, seedList, *parallel, cfg)
			if err != nil {
				return err
			}
			if err := render(table); err != nil {
				return err
			}
		}
		return nil
	}

	if seedList != nil {
		for _, e := range selected {
			table, err := coopmrm.SweepSeeds(e, opt, seedList, *parallel)
			if err != nil {
				return err
			}
			if err := render(table); err != nil {
				return err
			}
		}
		return nil
	}

	tables, err := coopmrm.RunSet(selected, opt, *parallel)
	if err != nil {
		return err
	}
	for _, table := range tables {
		if err := render(table); err != nil {
			return err
		}
	}
	return nil
}

// runWithArtifacts is the -out path: the same experiment selection and
// rendering as the plain path, but every job records an artifact
// bundle and its wall time feeds bench.json.
func runWithArtifacts(stdout io.Writer, render func(coopmrm.Table) error,
	selected []coopmrm.Experiment, opt coopmrm.Options,
	seedList []int64, parallel int, seed int64, outDir string) error {
	seedCount := 1
	if seedList != nil {
		seedCount = len(seedList)
	}
	bench := artifact.NewBench(parallel, seed, seedCount, opt.Quick)

	var results []coopmrm.ExperimentArtifacts
	if seedList != nil {
		for _, e := range selected {
			res, err := coopmrm.SweepSeedsWithArtifacts(e, opt, seedList, parallel)
			if err != nil {
				return err
			}
			results = append(results, res)
		}
	} else {
		var err error
		results, err = coopmrm.RunSetWithArtifacts(selected, opt, parallel)
		if err != nil {
			return err
		}
	}

	for _, res := range results {
		if err := render(res.Table); err != nil {
			return err
		}
	}
	if err := coopmrm.WriteRunArtifacts(outDir, results, bench); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d artifact bundle(s) + bench.json under %s\n", len(results), outDir)
	return nil
}

// runStreamWithArtifacts is the -stream -out path: streaming campaign
// aggregation with run capture capped to the campaign's first seeds
// (capturing every run would reintroduce the O(seeds) retention the
// streaming path exists to remove) and per-seed wall statistics
// feeding the variance-aware bench gate.
func runStreamWithArtifacts(stdout io.Writer, render func(coopmrm.Table) error,
	selected []coopmrm.Experiment, opt coopmrm.Options,
	seedList []int64, parallel int, seed int64, outDir string,
	cfg coopmrm.CampaignConfig) error {
	bench := artifact.NewBench(parallel, seed, len(seedList), opt.Quick)
	var results []coopmrm.ExperimentArtifacts
	for _, e := range selected {
		res, err := coopmrm.SweepSeedsStreamWithArtifacts(e, opt, seedList, parallel, cfg)
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	for _, res := range results {
		if err := render(res.Table); err != nil {
			return err
		}
	}
	if err := coopmrm.WriteRunArtifacts(outDir, results, bench); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d artifact bundle(s) + bench.json under %s\n", len(results), outDir)
	return nil
}

// startProfiling enables the requested profilers and returns the
// matching stop function (safe to call when nothing is enabled).
func startProfiling(cpuPath, memPath, tracePath string) (func(), error) {
	var stops []func()
	stop := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			stop()
			return nil, fmt.Errorf("exectrace: %w", err)
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			stop()
			return nil, fmt.Errorf("exectrace: %w", err)
		}
		stops = append(stops, func() {
			rtrace.Stop()
			f.Close()
		})
	}
	if memPath != "" {
		stops = append(stops, func() {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		})
	}
	return stop, nil
}
