// Command coopmrmd serves the experiment harness as a long-running
// HTTP job service with a content-addressed result cache.
//
// Usage:
//
//	coopmrmd [-listen 127.0.0.1:8355] [-state DIR]
//	         [-cache-max-bytes N] [-max-jobs N] [-parallel N] [-reuse-rigs]
//	         [-job-timeout D] [-checkpoint-every N] [-drain-timeout D]
//	coopmrmd -selfbench [-bench-clients N] [-bench-jobs N] [-bench-out FILE]
//
// API (see EXPERIMENTS.md for schemas):
//
//	POST /v1/jobs               submit a job; the response ID is the
//	                            content address of the request, so
//	                            identical submissions share one run
//	GET  /v1/jobs/{id}          status + progress
//	GET  /v1/jobs/{id}/artifact completed bundle as a deterministic tar
//	GET  /v1/jobs/{id}/bench    the job's wall-clock bench.json
//	GET  /v1/metrics            job counts, cache hit ratio, runs/sec
//	GET  /v1/experiments        the runnable experiment index
//
// On SIGTERM/SIGINT the server drains: it stops accepting submissions,
// streaming campaigns park at a final checkpoint (no folded seed is
// lost), and the next start on the same -state resumes them to results
// byte-identical to an uninterrupted run.
//
// -selfbench skips serving and measures sustained job throughput
// in-process: N concurrent clients submit distinct jobs against a cold
// cache, then resubmit them warm; both phases land in bench/v1 "serve"
// entries (see BENCH_serve.json).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"coopmrm/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "coopmrmd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("coopmrmd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8355", "address to serve the HTTP API on")
	state := fs.String("state", ".coopmrmd", "state directory (job specs, checkpoints, cached results)")
	cacheMax := fs.Int64("cache-max-bytes", 1<<30, "result cache size bound; least-recently-fetched results are evicted past it")
	maxJobs := fs.Int("max-jobs", 2, "maximum concurrently running jobs")
	parallel := fs.Int("parallel", 0, "worker pool size per job (0: one per CPU)")
	reuseRigs := fs.Bool("reuse-rigs", false, "serve campaign rigs from the warm-rig pool (snapshot/reset); result bytes are identical either way, so it never enters the cache key")
	jobTimeout := fs.Duration("job-timeout", 15*time.Minute, "per-job run time bound (requests may shorten, never extend)")
	ckEvery := fs.Int("checkpoint-every", 16, "folded seeds between campaign checkpoints for streaming jobs")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "how long to wait for in-flight jobs to park on shutdown")
	selfbench := fs.Bool("selfbench", false, "measure sustained job throughput instead of serving")
	benchClients := fs.Int("bench-clients", 8, "selfbench: concurrent clients")
	benchJobs := fs.Int("bench-jobs", 32, "selfbench: distinct jobs per phase")
	benchOut := fs.String("bench-out", "BENCH_serve.json", "selfbench: bench/v1 output file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := server.Config{
		StateDir:        *state,
		CacheMaxBytes:   *cacheMax,
		MaxJobs:         *maxJobs,
		Parallel:        *parallel,
		ReuseRigs:       *reuseRigs,
		JobTimeout:      *jobTimeout,
		CheckpointEvery: *ckEvery,
	}
	if *selfbench {
		return selfBench(cfg, *benchClients, *benchJobs, *benchOut)
	}

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("coopmrmd: serving on http://%s (state %s)", *listen, *state)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("coopmrmd: %s: draining", sig)
	}

	// Drain order matters: refuse new work first, then stop the
	// listener, then wait for in-flight jobs to park at a checkpoint.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("coopmrmd: shutdown: %v", err)
	}
	if !srv.WaitJobs(*drainTimeout) {
		return fmt.Errorf("drain timed out after %s; unfinished jobs re-run from their last checkpoint on restart", *drainTimeout)
	}
	log.Printf("coopmrmd: drained; interrupted jobs resume on next start")
	return nil
}
