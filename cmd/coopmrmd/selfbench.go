package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"coopmrm/internal/artifact"
	"coopmrm/internal/server"
)

// selfBench measures sustained job throughput against an in-process
// server: clients concurrent clients submit jobs distinct quick E1
// jobs (phase "serve/cold", every one a cache miss that executes),
// then resubmit the identical set (phase "serve/cached", every one a
// hit served from disk). Each client drives the full protocol —
// submit, poll to done, fetch the artifact tar — so the numbers
// include serving costs, not just simulation. Results append to the
// bench/v1 "serve" section next to the wall-clock experiment gate.
func selfBench(cfg server.Config, clients, jobs int, outPath string) error {
	stateDir, err := os.MkdirTemp("", "coopmrmd-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(stateDir)
	cfg.StateDir = stateDir

	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	go http.Serve(ln, srv.Handler())
	base := "http://" + ln.Addr().String()

	bodies := make([][]byte, jobs)
	for i := range bodies {
		bodies[i] = fmt.Appendf(nil, `{"experiment":"E1","options":{"quick":true,"seed":%d}}`, i+1)
	}

	bench := artifact.NewBench(cfg.Parallel, 1, 1, true)
	for _, phase := range []string{"serve/cold", "serve/cached"} {
		sb, err := runPhase(phase, base, bodies, clients)
		if err != nil {
			return err
		}
		bench.Serve = append(bench.Serve, sb)
		// Serve phases are the report's only timed work, so their walls
		// are the report total (a serve report used to ship
		// "wall_seconds": 0, which reads as an empty run).
		bench.WallSeconds += sb.WallSeconds
		fmt.Printf("%-13s %d clients, %d jobs: %.2fs wall, %.1f jobs/s, %.1f runs/s (hits %d, misses %d)\n",
			sb.ID, sb.Clients, sb.Jobs, sb.WallSeconds, sb.JobsPerSec, sb.RunsPerSec,
			sb.CacheHits, sb.CacheMisses)
	}
	if err := artifact.WriteBench(outPath, bench); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// runPhase pushes every job body through one submit→poll→fetch cycle
// across the client pool and reduces the result to a ServeBench row.
func runPhase(id, base string, bodies [][]byte, clients int) (artifact.ServeBench, error) {
	before, err := fetchMetrics(base)
	if err != nil {
		return artifact.ServeBench{}, err
	}
	work := make(chan []byte)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for body := range work {
				if err := driveJob(base, body); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}
	for _, b := range bodies {
		work <- b
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errs:
		return artifact.ServeBench{}, fmt.Errorf("%s: %w", id, err)
	default:
	}
	after, err := fetchMetrics(base)
	if err != nil {
		return artifact.ServeBench{}, err
	}
	runs := int(after.Throughput.RunsCompleted - before.Throughput.RunsCompleted)
	return artifact.ServeBench{
		ID:          id,
		Clients:     clients,
		Jobs:        len(bodies),
		Runs:        runs,
		WallSeconds: wall.Seconds(),
		JobsPerSec:  float64(len(bodies)) / wall.Seconds(),
		RunsPerSec:  float64(runs) / wall.Seconds(),
		CacheHits:   after.Cache.Hits - before.Cache.Hits,
		CacheMisses: after.Cache.Misses - before.Cache.Misses,
	}, nil
}

// driveJob runs one full client cycle: submit, poll until terminal,
// fetch and discard the artifact tar.
func driveJob(base string, body []byte) error {
	var st struct {
		ID     string `json:"id"`
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	if err := decodeInto(resp, &st); err != nil {
		return err
	}
	for st.Status != "done" {
		if st.Status == "failed" {
			return fmt.Errorf("job %.12s failed: %s", st.ID, st.Error)
		}
		time.Sleep(5 * time.Millisecond)
		resp, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			return err
		}
		if err := decodeInto(resp, &st); err != nil {
			return err
		}
	}
	resp, err = http.Get(base + "/v1/jobs/" + st.ID + "/artifact")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("artifact %.12s: HTTP %d", st.ID, resp.StatusCode)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// metricsDoc mirrors the /v1/metrics fields the bench consumes.
type metricsDoc struct {
	Cache struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"cache"`
	Throughput struct {
		RunsCompleted int64 `json:"runs_completed"`
	} `json:"throughput"`
}

func fetchMetrics(base string) (metricsDoc, error) {
	var m metricsDoc
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		return m, err
	}
	return m, decodeInto(resp, &m)
}

func decodeInto(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
