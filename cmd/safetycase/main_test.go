package main

import "testing"

func TestRunGranularities(t *testing.T) {
	for _, g := range []string{"global_only", "per_group", "per_constituent"} {
		if err := run([]string{"-granularity", g}); err != nil {
			t.Errorf("run(%s): %v", g, err)
		}
	}
	if err := run([]string{"-granularity", "nope"}); err == nil {
		t.Error("unknown granularity should error")
	}
	if err := run([]string{"-pairs", "3", "-trucks", "2", "-tree"}); err != nil {
		t.Errorf("tree render: %v", err)
	}
}

func TestBuildSpecShape(t *testing.T) {
	spec := buildSpec(2, 2, 3, true)
	if len(spec.Constituents) != 6 {
		t.Errorf("constituents = %d, want 6", len(spec.Constituents))
	}
	if spec.Groups["truck2_1"] != "pair2" {
		t.Errorf("groups = %v", spec.Groups)
	}
	if spec.MRCLevels != 3 || !spec.SharedSpace {
		t.Error("spec knobs not applied")
	}
}
