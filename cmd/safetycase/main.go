// Command safetycase renders the GSN-style safety argument for a
// quarry-shaped system at a chosen MRC granularity and prints its
// proof-obligation counts — the machinery behind the Fig. 2
// "simpler/complex safety case" axis.
//
// Usage:
//
//	safetycase -pairs 2 -trucks 1 -granularity per_group [-tree]
package main

import (
	"flag"
	"fmt"
	"os"

	"coopmrm/internal/safetycase"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "safetycase:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("safetycase", flag.ContinueOnError)
	pairs := fs.Int("pairs", 2, "digger/truck pairs in the system")
	trucks := fs.Int("trucks", 1, "trucks per pair")
	granularity := fs.String("granularity", "per_constituent",
		"MRC granularity: global_only | per_group | per_constituent")
	levels := fs.Int("levels", 4, "MRC levels per constituent hierarchy")
	shared := fs.Bool("shared", true, "constituents share space (interaction evidence needed)")
	tree := fs.Bool("tree", false, "render the full argument tree")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g safetycase.Granularity
	switch *granularity {
	case "global_only":
		g = safetycase.GranularityGlobal
	case "per_group":
		g = safetycase.GranularityGroup
	case "per_constituent":
		g = safetycase.GranularityConstituent
	default:
		return fmt.Errorf("unknown granularity %q", *granularity)
	}

	spec := buildSpec(*pairs, *trucks, *levels, *shared)
	root := safetycase.Build(spec, g)

	fmt.Printf("system: %d constituents (%d pairs x %d trucks + diggers), %d MRC levels, shared space %v\n",
		len(spec.Constituents), *pairs, *trucks, *levels, *shared)
	fmt.Printf("granularity: %s\n", g)
	fmt.Printf("argument nodes: %d, proof obligations: %d\n", root.Nodes(), root.Obligations())

	gl, gr, co := safetycase.Compare(spec)
	fmt.Printf("comparison     global_only=%d  per_group=%d  per_constituent=%d obligations\n", gl, gr, co)

	if *tree {
		fmt.Println()
		fmt.Print(root.Render())
	}
	return nil
}

func buildSpec(pairs, trucksPerPair, levels int, shared bool) safetycase.SystemSpec {
	spec := safetycase.SystemSpec{
		MRCLevels:   levels,
		SharedSpace: shared,
		Groups:      map[string]string{},
	}
	for p := 1; p <= pairs; p++ {
		dig := fmt.Sprintf("digger%d", p)
		spec.Constituents = append(spec.Constituents, dig)
		spec.Groups[dig] = fmt.Sprintf("pair%d", p)
		for k := 1; k <= trucksPerPair; k++ {
			id := fmt.Sprintf("truck%d_%d", p, k)
			spec.Constituents = append(spec.Constituents, id)
			spec.Groups[id] = fmt.Sprintf("pair%d", p)
		}
	}
	return spec
}
