// Command mrmsim runs one named scenario with a chosen interaction
// class and fault schedule, printing the metrics report, the event
// summary, and (optionally) CSV artefacts.
//
// Usage:
//
//	mrmsim -scenario quarry -policy coordinated -horizon 5m \
//	       -fault truck1_1:sensor:60s [-events events.csv] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"coopmrm/internal/core"
	"coopmrm/internal/fault"
	"coopmrm/internal/scenario"
	"coopmrm/internal/sim"
	"coopmrm/internal/trace"
	"coopmrm/internal/world"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mrmsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mrmsim", flag.ContinueOnError)
	scen := fs.String("scenario", "quarry", "scenario: quarry | harbour | highway | platoon (ignored with -config)")
	configPath := fs.String("config", "", "build the scenario from a JSON file instead (see examples/custom/site.json)")
	policy := fs.String("policy", "coordinated", "interaction class: baseline | status_sharing | intent_sharing | agreement_seeking | prescriptive | coordinated | choreographed | orchestrated")
	horizon := fs.Duration("horizon", 5*time.Minute, "simulated duration")
	seed := fs.Int64("seed", 1, "simulation seed")
	faults := fs.String("fault", "", "comma-separated faults target:kind:onset, e.g. truck1_1:sensor:60s")
	eventsOut := fs.String("events", "", "write the event log as CSV to this file")
	traceOut := fs.String("trace", "", "write 1 Hz position traces as CSV to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := parsePolicy(*policy)
	if err != nil {
		return err
	}
	schedule, err := parseFaults(*faults)
	if err != nil {
		return err
	}

	if *configPath != "" {
		return runConfig(*configPath, *horizon, *eventsOut)
	}

	var res scenario.Result
	var recorder *trace.Recorder
	attachTrace := func(e *sim.Engine, cs []*core.Constituent) {
		if *traceOut == "" {
			return
		}
		sources := make([]trace.Source, 0, len(cs))
		for _, c := range cs {
			c := c
			sources = append(sources, trace.Source{
				ID:    c.ID(),
				Pos:   c.Body().Position,
				Speed: c.Body().Speed,
				Mode:  func() string { return c.Mode().String() },
			})
		}
		recorder = trace.NewRecorder(time.Second, sources...)
		e.AddPostHook(recorder.Hook())
	}
	switch *scen {
	case "quarry":
		rig, err := scenario.NewQuarry(scenario.QuarryConfig{
			Pairs: 2, TrucksPerPair: 2, Policy: p, Seed: *seed,
			Concerted: true, Faults: schedule,
		})
		if err != nil {
			return err
		}
		attachTrace(rig.Engine, rig.All())
		res = rig.Run(*horizon)
		fmt.Printf("delivered: %.1f units\n\n", rig.Delivered())
	case "harbour":
		weather := world.MustWeatherSchedule(
			world.WeatherChange{At: 75 * time.Second, Condition: world.Rain, TemperatureC: 2})
		rig, err := scenario.NewHarbour(scenario.HarbourConfig{
			Forklifts: 3, Seed: *seed, TwoLevel: true,
			Weather: weather, Faults: schedule,
		})
		if err != nil {
			return err
		}
		attachTrace(rig.Engine, rig.All())
		res = rig.Run(*horizon)
		fmt.Printf("containers stacked: %.1f, final MRC level: %d\n\n",
			rig.Delivered(), rig.Supervisor.Level())
	case "highway":
		rig, err := scenario.NewHighway(scenario.HighwayConfig{
			NCars: 5, Policy: p, Seed: *seed, Faults: schedule,
		})
		if err != nil {
			return err
		}
		attachTrace(rig.Engine, rig.Cars)
		res = rig.Run(*horizon)
		fmt.Printf("traffic progress: %.1f km, ego MRC: %s\n\n",
			rig.Progress()/1000, rig.Ego.CurrentMRC().ID)
	case "platoon":
		rig, err := scenario.NewPlatoon(scenario.PlatoonConfig{
			Members: 5, Seed: *seed, Faults: schedule,
		})
		if err != nil {
			return err
		}
		attachTrace(rig.Engine, rig.Members)
		res = rig.Run(*horizon)
		fmt.Printf("platoon speed: %.1f m/s, elections: %d, order: %s\n\n",
			rig.Platoon.MeanSpeed(), rig.Platoon.Elections(),
			strings.Join(rig.Platoon.Order(), " > "))
	default:
		return fmt.Errorf("unknown scenario %q", *scen)
	}

	fmt.Println(res.Report)
	fmt.Println("events:")
	fmt.Println(res.Log.Summary())

	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteEventCSV(f, res.Log); err != nil {
			return err
		}
		fmt.Println("event CSV written to", *eventsOut)
	}
	if recorder != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := recorder.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("position trace (%d samples) written to %s\n", recorder.Len(), *traceOut)
	}
	return nil
}

// runConfig executes a JSON-defined scenario.
func runConfig(path string, horizon time.Duration, eventsOut string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rig, err := scenario.Load(f)
	if err != nil {
		return err
	}
	res := rig.Run(horizon)
	fmt.Printf("scenario %q: delivered %.1f units\n\n", rig.Name, rig.Delivered())
	fmt.Println(res.Report)
	fmt.Println("events:")
	fmt.Println(res.Log.Summary())
	if eventsOut != "" {
		out, err := os.Create(eventsOut)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := trace.WriteEventCSV(out, res.Log); err != nil {
			return err
		}
		fmt.Println("event CSV written to", eventsOut)
	}
	return nil
}

func parsePolicy(name string) (scenario.PolicyKind, error) {
	for _, p := range scenario.AllPolicies() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown policy %q", name)
}

// parseFaults parses "target:kind:onset" triples. Kinds: sensor,
// brake, steering, propulsion, comm, tool, localization.
func parseFaults(spec string) ([]fault.Fault, error) {
	if spec == "" {
		return nil, nil
	}
	kinds := map[string]fault.Kind{
		"sensor": fault.KindSensor, "brake": fault.KindBrake,
		"steering": fault.KindSteering, "propulsion": fault.KindPropulsion,
		"comm": fault.KindComm, "tool": fault.KindTool,
		"localization": fault.KindLocalization,
	}
	var out []fault.Fault
	for i, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("fault %q: want target:kind:onset", part)
		}
		kind, ok := kinds[fields[1]]
		if !ok {
			return nil, fmt.Errorf("fault %q: unknown kind %q", part, fields[1])
		}
		at, err := time.ParseDuration(fields[2])
		if err != nil {
			return nil, fmt.Errorf("fault %q: %v", part, err)
		}
		out = append(out, fault.Fault{
			ID: fmt.Sprintf("cli-%d", i), Target: fields[0], Kind: kind,
			Severity: 1, Permanent: true, At: at,
		})
	}
	return out, nil
}
