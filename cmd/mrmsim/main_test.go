package main

import (
	"os"
	"testing"
	"time"

	"coopmrm/internal/fault"
	"coopmrm/internal/trace"
)

func TestParsePolicy(t *testing.T) {
	if _, err := parsePolicy("coordinated"); err != nil {
		t.Errorf("coordinated should parse: %v", err)
	}
	if _, err := parsePolicy("baseline"); err != nil {
		t.Errorf("baseline should parse: %v", err)
	}
	if _, err := parsePolicy("nonsense"); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestParseFaults(t *testing.T) {
	fs, err := parseFaults("truck1_1:sensor:60s, digger1:brake:2m")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("faults = %d", len(fs))
	}
	if fs[0].Target != "truck1_1" || fs[0].Kind != fault.KindSensor || fs[0].At != 60*time.Second {
		t.Errorf("fault[0] = %+v", fs[0])
	}
	if fs[1].Kind != fault.KindBrake || fs[1].At != 2*time.Minute {
		t.Errorf("fault[1] = %+v", fs[1])
	}
	if got, _ := parseFaults(""); got != nil {
		t.Error("empty spec should yield nil")
	}
	bad := []string{"x:y", "a:unknown:5s", "a:sensor:notaduration"}
	for _, spec := range bad {
		if _, err := parseFaults(spec); err == nil {
			t.Errorf("spec %q should error", spec)
		}
	}
}

func TestRunScenarios(t *testing.T) {
	cases := [][]string{
		{"-scenario", "quarry", "-policy", "status_sharing", "-horizon", "30s",
			"-fault", "truck1_1:sensor:10s"},
		{"-scenario", "harbour", "-horizon", "30s"},
		{"-scenario", "highway", "-policy", "baseline", "-horizon", "30s"},
		{"-scenario", "platoon", "-horizon", "30s"},
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
	if err := run([]string{"-scenario", "moonbase"}); err == nil {
		t.Error("unknown scenario should error")
	}
	if err := run([]string{"-policy", "zzz"}); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestTraceAndEventsOutput(t *testing.T) {
	dir := t.TempDir()
	tracePath := dir + "/trace.csv"
	eventsPath := dir + "/events.csv"
	err := run([]string{"-scenario", "quarry", "-policy", "baseline",
		"-horizon", "30s", "-trace", tracePath, "-events", eventsPath})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{tracePath, eventsPath} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Errorf("output %s missing or empty: %v", p, err)
		}
	}
	// The trace must parse back.
	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	samples, err := trace.ReadCSV(f)
	if err != nil || len(samples) == 0 {
		t.Errorf("trace round trip: %d samples, err %v", len(samples), err)
	}
}

func TestRunConfigFile(t *testing.T) {
	if err := run([]string{"-config", "../../examples/custom/site.json", "-horizon", "30s"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", "/nonexistent.json"}); err == nil {
		t.Error("missing config should error")
	}
}

func TestRunWarehouseConfig(t *testing.T) {
	if err := run([]string{"-config", "../../examples/custom/warehouse.json", "-horizon", "2m"}); err != nil {
		t.Fatal(err)
	}
}
