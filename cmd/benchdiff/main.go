// Command benchdiff compares two coopmrm/bench/v1 reports — the
// bench.json written by `experiments -out` (the committed quick
// baseline lives at BENCH_quick.json) — and prints the per-experiment
// and total wall-clock deltas. It is the repo's perf-regression gate:
// CI runs the quick suite, diffs it against the committed baseline,
// and warns (non-blocking) when the slowdown exceeds the threshold.
//
// Usage:
//
//	benchdiff [-threshold 0.25] OLD.json NEW.json
//
// The exit status encodes the verdict so callers can gate on it:
//
//	0 — no experiment (and not the total) slowed down by more than
//	    the threshold fraction
//	1 — at least one regression beyond the threshold
//	2 — usage or I/O error
//
// -threshold is the tolerated slowdown as a fraction of the old wall
// time (0.25 = 25% slower). Wall clocks are noisy — especially on
// shared CI runners — so thresholds below ~0.25 will cry wolf;
// experiments whose wall time is under MinSeconds on either side are
// excluded from the verdict (their relative noise is unbounded — a
// 60 ms experiment swings ±50% between back-to-back runs on a busy
// machine) but their deltas are still printed.
//
// Variance-aware verdict: when the OLD report carries per-seed wall
// statistics (wall_sd_seconds/wall_samples, written by seed-sweep
// campaigns), the fixed threshold is replaced for that experiment by a
// 95% confidence bound on the difference of two campaign totals —
// regression iff new - old > 1.96 · sd · √(2n). Statistical evidence
// beats a one-size-fits-all fraction wherever it exists.
//
// A baseline entry with zero recorded wall can never produce a finite
// slowdown fraction; when the new wall is above the noise floor it is
// flagged explicitly instead of silently passing. That guard applies
// to experiment entries and to totals backed by experiment entries —
// a serve-only report (BENCH_serve.json) legitimately keeps its wall
// in the serve rows, so it is compared through them instead of being
// flagged for an "empty" experiment total.
//
// Beyond experiment walls the diff also gates throughput rows, where
// higher is better and a *drop* beyond the threshold is the
// regression: serve rows (jobs/sec, from coopmrmd -selfbench) and
// campaign detail rows (seeds/sec, the E20 warm-rig claim). Rows
// whose wall is under MinSeconds on either side are printed but never
// gate, for the same noise-floor reason as experiments.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"coopmrm/internal/artifact"
)

// MinSeconds is the wall-time floor below which a per-experiment
// delta does not count towards the verdict: a 60 ms experiment that
// doubles is scheduler noise, not a regression. The total always
// gates regardless.
const MinSeconds = 0.1

// zCI is the normal 95% critical value for the variance-aware verdict.
const zCI = 1.96

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
	}
	os.Exit(code)
}

func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.25,
		"tolerated slowdown as a fraction of old wall time (0.25 = 25% slower)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 2 {
		return 2, fmt.Errorf("usage: benchdiff [-threshold F] OLD.json NEW.json")
	}
	if *threshold < 0 {
		return 2, fmt.Errorf("threshold %v must be >= 0", *threshold)
	}
	old, err := readBench(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	new_, err := readBench(fs.Arg(1))
	if err != nil {
		return 2, err
	}
	return diff(stdout, old, new_, *threshold), nil
}

// readBench loads and schema-checks one report.
func readBench(path string) (artifact.Bench, error) {
	var b artifact.Bench
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	if b.Schema != artifact.SchemaBench {
		return b, fmt.Errorf("%s: schema %q, want %q", path, b.Schema, artifact.SchemaBench)
	}
	return b, nil
}

// diff renders the comparison and returns the verdict exit code.
func diff(w io.Writer, old, new_ artifact.Bench, threshold float64) int {
	oldBy := make(map[string]artifact.BenchExperiment, len(old.Experiments))
	for _, e := range old.Experiments {
		oldBy[e.ID] = e
	}
	fmt.Fprintf(w, "%-6s %12s %12s %12s %9s\n", "id", "old (s)", "new (s)", "delta (s)", "delta")
	regressions := 0
	seen := make(map[string]bool, len(new_.Experiments))
	for _, ne := range new_.Experiments {
		seen[ne.ID] = true
		oe, ok := oldBy[ne.ID]
		if !ok {
			fmt.Fprintf(w, "%-6s %12s %12.4f %12s %9s  (new experiment)\n", ne.ID, "-", ne.WallSeconds, "-", "-")
			continue
		}
		d := ne.WallSeconds - oe.WallSeconds
		frac := 0.0
		switch {
		case oe.WallSeconds > 0:
			frac = d / oe.WallSeconds
		case ne.WallSeconds > 0:
			// A zero-wall baseline admits no finite fraction — leaving
			// frac at 0 here used to make such regressions unflaggable.
			frac = math.Inf(1)
		}
		marker := ""
		switch {
		case oe.WallSdSeconds > 0 && oe.WallSamples >= 2:
			// Variance-aware verdict: the baseline is a campaign total
			// over n per-seed samples with sd s, so the difference of
			// two such totals has sd s·√(2n); flag beyond the 95%
			// bound. The noise floor still applies.
			bound := zCI * oe.WallSdSeconds * math.Sqrt(2*float64(oe.WallSamples))
			if d > bound && oe.WallSeconds >= MinSeconds && ne.WallSeconds >= MinSeconds {
				marker = fmt.Sprintf("  REGRESSION (> 95%% CI +%.4fs, n=%d)", bound, oe.WallSamples)
				regressions++
			}
		case oe.WallSeconds == 0 && ne.WallSeconds >= MinSeconds:
			marker = "  REGRESSION (baseline 0s)"
			regressions++
		case threshold > 0 && frac > threshold && oe.WallSeconds >= MinSeconds && ne.WallSeconds >= MinSeconds:
			marker = fmt.Sprintf("  REGRESSION (> %+.0f%%)", threshold*100)
			regressions++
		}
		fmt.Fprintf(w, "%-6s %12.4f %12.4f %+12.4f %+8.1f%%%s\n",
			ne.ID, oe.WallSeconds, ne.WallSeconds, d, frac*100, marker)
	}
	for _, oe := range old.Experiments {
		if !seen[oe.ID] {
			fmt.Fprintf(w, "%-6s %12.4f %12s %12s %9s  (removed)\n", oe.ID, oe.WallSeconds, "-", "-", "-")
		}
	}
	regressions += diffRates(w, "serve (jobs/sec; drop beyond threshold regresses)",
		serveRates(old.Serve), serveRates(new_.Serve), threshold)
	regressions += diffRates(w, "campaign (seeds/sec; drop beyond threshold regresses)",
		campaignRates(old.Details), campaignRates(new_.Details), threshold)
	totalDelta := new_.WallSeconds - old.WallSeconds
	totalFrac := 0.0
	if old.WallSeconds > 0 {
		totalFrac = totalDelta / old.WallSeconds
	}
	marker := ""
	switch {
	case threshold > 0 && totalFrac > threshold:
		marker = fmt.Sprintf("  REGRESSION (> %+.0f%%)", threshold*100)
		regressions++
	case old.WallSeconds == 0 && new_.WallSeconds >= MinSeconds && len(old.Experiments) > 0:
		// Same unflaggable-fraction hole as per-experiment zero walls —
		// but only when the baseline claims experiment entries. A
		// serve-only baseline keeps its wall in the serve rows (gated
		// above), so a zero experiment total there is legitimate.
		marker = "  REGRESSION (baseline 0s)"
		regressions++
	}
	fmt.Fprintf(w, "%-6s %12.4f %12.4f %+12.4f %+8.1f%%%s\n",
		"total", old.WallSeconds, new_.WallSeconds, totalDelta, totalFrac*100, marker)
	if regressions > 0 {
		fmt.Fprintf(w, "%d regression(s) beyond the %.0f%% threshold / 95%% CI\n", regressions, threshold*100)
		return 1
	}
	return 0
}

// rateRow is one higher-is-better throughput measurement: a serve
// phase (jobs/sec) or a campaign detail (seeds/sec), with the wall
// that produced it for noise-floor gating.
type rateRow struct {
	id   string
	rate float64
	wall float64
}

func serveRates(rows []artifact.ServeBench) []rateRow {
	out := make([]rateRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, rateRow{id: r.ID, rate: r.JobsPerSec, wall: r.WallSeconds})
	}
	return out
}

// campaignRates keeps the details rows that carry a seed-cycling rate
// (campaign arms, e.g. "E20/warm"); per-rig tick-throughput details
// (E18) stay informational.
func campaignRates(rows []artifact.BenchDetail) []rateRow {
	var out []rateRow
	for _, r := range rows {
		if r.SeedsPerSec > 0 {
			out = append(out, rateRow{id: r.ID, rate: r.SeedsPerSec, wall: r.WallSeconds})
		}
	}
	return out
}

// diffRates renders a throughput section and counts its regressions: a
// rate *drop* beyond the threshold fraction flags, walls under
// MinSeconds on either side only print. Sections absent from both
// reports render nothing.
func diffRates(w io.Writer, title string, old, new_ []rateRow, threshold float64) int {
	if len(old) == 0 && len(new_) == 0 {
		return 0
	}
	fmt.Fprintf(w, "%s\n", title)
	oldBy := make(map[string]rateRow, len(old))
	for _, r := range old {
		oldBy[r.id] = r
	}
	regressions := 0
	seen := make(map[string]bool, len(new_))
	for _, nr := range new_ {
		seen[nr.id] = true
		or, ok := oldBy[nr.id]
		if !ok {
			fmt.Fprintf(w, "%-24s %12s %12.1f %9s  (new measurement)\n", nr.id, "-", nr.rate, "-")
			continue
		}
		frac := 0.0
		if or.rate > 0 {
			frac = (nr.rate - or.rate) / or.rate
		}
		marker := ""
		if threshold > 0 && frac < -threshold && or.wall >= MinSeconds && nr.wall >= MinSeconds {
			marker = fmt.Sprintf("  REGRESSION (> %.0f%% slower)", threshold*100)
			regressions++
		}
		fmt.Fprintf(w, "%-24s %12.1f %12.1f %+8.1f%%%s\n", nr.id, or.rate, nr.rate, frac*100, marker)
	}
	for _, or := range old {
		if !seen[or.id] {
			fmt.Fprintf(w, "%-24s %12.1f %12s %9s  (removed)\n", or.id, or.rate, "-", "-")
		}
	}
	return regressions
}
