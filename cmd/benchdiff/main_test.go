package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"coopmrm/internal/artifact"
)

// writeBench writes a bench/v1 file with the given per-experiment
// seconds and returns its path.
func writeBench(t *testing.T, name string, wall map[string]float64) string {
	t.Helper()
	b := artifact.NewBench(1, 1, 1, true)
	// Stable order so the rendered diff is deterministic in tests.
	for _, id := range []string{"E1", "E2", "E3"} {
		if s, ok := wall[id]; ok {
			b.Add(id, time.Duration(s*float64(time.Second)), 1, 1)
		}
	}
	path := filepath.Join(t.TempDir(), name)
	if err := artifact.WriteBench(path, b); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffNoRegression(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{"E1": 1.0, "E2": 2.0})
	new_ := writeBench(t, "new.json", map[string]float64{"E1": 0.5, "E2": 2.1})
	var out bytes.Buffer
	code, err := run([]string{"-threshold", "0.25", old, new_}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code = %d, err = %v\n%s", code, err, out.String())
	}
	for _, want := range []string{"E1", "E2", "total", "-50.0%"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestDiffFlagsRegression(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{"E1": 1.0, "E2": 2.0})
	new_ := writeBench(t, "new.json", map[string]float64{"E1": 1.6, "E2": 2.0})
	var out bytes.Buffer
	code, err := run([]string{"-threshold", "0.25", old, new_}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("code = %d, want 1 (E1 +60%% beyond 25%% threshold)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("output missing REGRESSION marker:\n%s", out.String())
	}
}

// A regression on a sub-MinSeconds experiment is noise, not a
// verdict; the total still gates.
func TestDiffIgnoresTinyExperiments(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{"E1": 0.001, "E2": 2.0})
	new_ := writeBench(t, "new.json", map[string]float64{"E1": 0.010, "E2": 2.0})
	var out bytes.Buffer
	code, err := run([]string{"-threshold", "0.25", old, new_}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("code = %d, want 0 (1ms experiment noise must not gate)\n%s", code, out.String())
	}
}

func TestDiffAddedAndRemovedExperiments(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{"E1": 1.0, "E2": 1.0})
	new_ := writeBench(t, "new.json", map[string]float64{"E1": 1.0, "E3": 1.0})
	var out bytes.Buffer
	code, err := run([]string{old, new_}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code = %d, err = %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "new experiment") || !strings.Contains(out.String(), "removed") {
		t.Errorf("output missing added/removed markers:\n%s", out.String())
	}
}

func TestRejectsBadInput(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{"E1": 1.0})
	if code, err := run([]string{old}, &bytes.Buffer{}); err == nil || code != 2 {
		t.Errorf("one arg: code = %d, err = %v, want usage error", code, err)
	}
	if code, err := run([]string{old, filepath.Join(t.TempDir(), "missing.json")}, &bytes.Buffer{}); err == nil || code != 2 {
		t.Errorf("missing file: code = %d, err = %v, want I/O error", code, err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"something/else"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, err := run([]string{old, bad}, &bytes.Buffer{}); err == nil || code != 2 {
		t.Errorf("wrong schema: code = %d, err = %v, want schema error", code, err)
	}
	if code, err := run([]string{"-threshold", "-1", old, old}, &bytes.Buffer{}); err == nil || code != 2 {
		t.Errorf("negative threshold: code = %d, err = %v, want usage error", code, err)
	}
}

// writeBenchStats writes a bench/v1 file whose entries may carry
// per-seed wall statistics (sd in seconds, sample count).
func writeBenchStats(t *testing.T, name string,
	entries []artifact.BenchExperiment) string {
	t.Helper()
	b := artifact.NewBench(1, 1, 1, true)
	for _, e := range entries {
		b.AddStats(e.ID,
			time.Duration(e.WallSeconds*float64(time.Second)),
			time.Duration(e.WallSdSeconds*float64(time.Second)),
			e.WallSamples, e.Runs, e.Rows)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := artifact.WriteBench(path, b); err != nil {
		t.Fatal(err)
	}
	return path
}

// A baseline entry with zero recorded wall used to leave frac at 0 and
// pass silently no matter how slow the new run was.
func TestDiffFlagsZeroWallBaseline(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{"E1": 0.0, "E2": 2.0})
	new_ := writeBench(t, "new.json", map[string]float64{"E1": 5.0, "E2": 2.0})
	var out bytes.Buffer
	code, err := run([]string{"-threshold", "0.25", old, new_}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "REGRESSION (baseline 0s)") {
		t.Errorf("code = %d, want 1 with baseline-0s marker\n%s", code, out.String())
	}
	// A zero-wall baseline against a sub-noise-floor new wall stays
	// unflagged: nothing measurable happened on either side.
	tiny := writeBench(t, "tiny.json", map[string]float64{"E1": 0.01, "E2": 2.0})
	out.Reset()
	if code, err = run([]string{"-threshold", "0.25", old, tiny}, &out); err != nil || code != 0 {
		t.Errorf("tiny new wall: code = %d, err = %v\n%s", code, err, out.String())
	}
}

// When the baseline carries per-seed variance, the verdict is the 95%
// CI bound on the difference of two campaign totals, not the fixed
// threshold — in both directions.
func TestDiffVarianceAwareVerdict(t *testing.T) {
	// n=16 seeds, sd=0.05 s ⇒ bound = 1.96·0.05·√32 ≈ 0.554 s.
	old := writeBenchStats(t, "old.json", []artifact.BenchExperiment{
		{ID: "E1", WallSeconds: 1.0, WallSdSeconds: 0.05, WallSamples: 16, Runs: 16, Rows: 3},
	})

	// +40% (beyond the 25% fixed threshold) but within the CI bound:
	// must NOT flag.
	// The total row still gates on its own fixed threshold, so lift it
	// out of the way with -threshold 10: only the CI verdict can flag.
	within := writeBench(t, "within.json", map[string]float64{"E1": 1.4})
	var out bytes.Buffer
	code, err := run([]string{"-threshold", "10", old, within}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || strings.Contains(out.String(), "REGRESSION (> 95% CI") {
		t.Errorf("within-CI slowdown must not flag: code = %d\n%s", code, out.String())
	}

	// +0.7 s, beyond the CI bound: must flag with the CI marker.
	beyond := writeBench(t, "beyond.json", map[string]float64{"E1": 1.7})
	out.Reset()
	if code, err = run([]string{"-threshold", "10", old, beyond}, &out); err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "95% CI") {
		t.Errorf("beyond-CI slowdown: code = %d, want 1 with CI marker\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "n=16") {
		t.Errorf("CI marker should cite the sample count:\n%s", out.String())
	}
}

// writeBenchServe writes a serve-only bench/v1 report (the
// BENCH_serve.json shape): no experiment entries, walls carried by the
// serve rows and summed into the total.
func writeBenchServe(t *testing.T, name string, rows []artifact.ServeBench) string {
	t.Helper()
	b := artifact.NewBench(1, 1, 1, true)
	for _, r := range rows {
		b.Serve = append(b.Serve, r)
		b.WallSeconds += r.WallSeconds
	}
	path := filepath.Join(t.TempDir(), name)
	if err := artifact.WriteBench(path, b); err != nil {
		t.Fatal(err)
	}
	return path
}

// Serve rows gate on jobs/sec drops; a legitimate serve baseline —
// experiments absent, total wall zero in old reports predating the
// wall fix — must not trip the zero-wall guard.
func TestDiffServeRates(t *testing.T) {
	mk := func(name string, coldRate float64, wall float64) string {
		return writeBenchServe(t, name, []artifact.ServeBench{
			{ID: "serve/cold", Clients: 8, Jobs: 32, WallSeconds: wall, JobsPerSec: coldRate},
			{ID: "serve/cached", Clients: 8, Jobs: 32, WallSeconds: 0.01, JobsPerSec: 2900},
		})
	}
	old := mk("old.json", 50, 0.6)
	same := mk("same.json", 48, 0.6)
	var out bytes.Buffer
	code, err := run([]string{"-threshold", "0.25", old, same}, &out)
	if err != nil || code != 0 {
		t.Fatalf("near-identical serve rates flagged: code = %d, err = %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "serve/cold") {
		t.Errorf("output missing serve rows:\n%s", out.String())
	}

	slow := mk("slow.json", 30, 1.0)
	out.Reset()
	if code, err = run([]string{"-threshold", "0.25", old, slow}, &out); err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "REGRESSION (> 25% slower)") {
		t.Errorf("40%% jobs/sec drop: code = %d, want 1 with slower marker\n%s", code, out.String())
	}
}

// A serve baseline whose report-level wall is zero (the shape shipped
// before selfbench summed phase walls) must not be flagged by the
// zero-wall total guard — it has no experiment entries to back a total.
func TestDiffServeOnlyZeroWallBaselinePasses(t *testing.T) {
	old := filepath.Join(t.TempDir(), "old.json")
	b := artifact.NewBench(0, 1, 1, true)
	b.Serve = []artifact.ServeBench{{ID: "serve/cold", Clients: 8, Jobs: 32, WallSeconds: 0.6, JobsPerSec: 50}}
	// WallSeconds deliberately left 0: the legacy serve-report shape.
	if err := artifact.WriteBench(old, b); err != nil {
		t.Fatal(err)
	}
	new_ := writeBenchServe(t, "new.json", []artifact.ServeBench{
		{ID: "serve/cold", Clients: 8, Jobs: 32, WallSeconds: 0.6, JobsPerSec: 49},
	})
	var out bytes.Buffer
	code, err := run([]string{"-threshold", "0.25", old, new_}, &out)
	if err != nil || code != 0 {
		t.Fatalf("legacy zero-wall serve baseline flagged: code = %d, err = %v\n%s", code, err, out.String())
	}
}

// Campaign detail rows (seeds/sec) gate like serve rows: a throughput
// drop beyond the threshold regresses, sub-noise-floor walls do not.
func TestDiffCampaignSeedsPerSec(t *testing.T) {
	mk := func(name string, warmRate float64) string {
		b := artifact.NewBench(1, 1, 1, true)
		b.Add("E20", 3*time.Second, 2, 2)
		b.Details = []artifact.BenchDetail{
			{ID: "E18/pairs=500", Ticks: 1000, WallSeconds: 1.0, TicksPerSec: 1000},
			{ID: "E20/fresh", Seeds: 10000, WallSeconds: 2.0, SeedsPerSec: 5000},
			{ID: "E20/warm", Seeds: 10000, WallSeconds: 1.0, SeedsPerSec: warmRate},
		}
		path := filepath.Join(t.TempDir(), name)
		if err := artifact.WriteBench(path, b); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := mk("old.json", 12000)
	ok_ := mk("ok.json", 11000)
	var out bytes.Buffer
	code, err := run([]string{"-threshold", "0.25", old, ok_}, &out)
	if err != nil || code != 0 {
		t.Fatalf("small seeds/sec wobble flagged: code = %d, err = %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "E20/warm") {
		t.Errorf("output missing campaign rows:\n%s", out.String())
	}
	if strings.Contains(out.String(), "E18/pairs=500") {
		t.Errorf("tick-throughput details must stay out of the campaign section:\n%s", out.String())
	}

	slow := mk("slow.json", 6000)
	out.Reset()
	if code, err = run([]string{"-threshold", "0.25", old, slow}, &out); err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "REGRESSION (> 25% slower)") {
		t.Errorf("50%% seeds/sec drop: code = %d, want 1 with slower marker\n%s", code, out.String())
	}
}
