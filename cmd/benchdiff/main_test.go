package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"coopmrm/internal/artifact"
)

// writeBench writes a bench/v1 file with the given per-experiment
// seconds and returns its path.
func writeBench(t *testing.T, name string, wall map[string]float64) string {
	t.Helper()
	b := artifact.NewBench(1, 1, 1, true)
	// Stable order so the rendered diff is deterministic in tests.
	for _, id := range []string{"E1", "E2", "E3"} {
		if s, ok := wall[id]; ok {
			b.Add(id, time.Duration(s*float64(time.Second)), 1, 1)
		}
	}
	path := filepath.Join(t.TempDir(), name)
	if err := artifact.WriteBench(path, b); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffNoRegression(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{"E1": 1.0, "E2": 2.0})
	new_ := writeBench(t, "new.json", map[string]float64{"E1": 0.5, "E2": 2.1})
	var out bytes.Buffer
	code, err := run([]string{"-threshold", "0.25", old, new_}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code = %d, err = %v\n%s", code, err, out.String())
	}
	for _, want := range []string{"E1", "E2", "total", "-50.0%"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestDiffFlagsRegression(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{"E1": 1.0, "E2": 2.0})
	new_ := writeBench(t, "new.json", map[string]float64{"E1": 1.6, "E2": 2.0})
	var out bytes.Buffer
	code, err := run([]string{"-threshold", "0.25", old, new_}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("code = %d, want 1 (E1 +60%% beyond 25%% threshold)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("output missing REGRESSION marker:\n%s", out.String())
	}
}

// A regression on a sub-MinSeconds experiment is noise, not a
// verdict; the total still gates.
func TestDiffIgnoresTinyExperiments(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{"E1": 0.001, "E2": 2.0})
	new_ := writeBench(t, "new.json", map[string]float64{"E1": 0.010, "E2": 2.0})
	var out bytes.Buffer
	code, err := run([]string{"-threshold", "0.25", old, new_}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("code = %d, want 0 (1ms experiment noise must not gate)\n%s", code, out.String())
	}
}

func TestDiffAddedAndRemovedExperiments(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{"E1": 1.0, "E2": 1.0})
	new_ := writeBench(t, "new.json", map[string]float64{"E1": 1.0, "E3": 1.0})
	var out bytes.Buffer
	code, err := run([]string{old, new_}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code = %d, err = %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "new experiment") || !strings.Contains(out.String(), "removed") {
		t.Errorf("output missing added/removed markers:\n%s", out.String())
	}
}

func TestRejectsBadInput(t *testing.T) {
	old := writeBench(t, "old.json", map[string]float64{"E1": 1.0})
	if code, err := run([]string{old}, &bytes.Buffer{}); err == nil || code != 2 {
		t.Errorf("one arg: code = %d, err = %v, want usage error", code, err)
	}
	if code, err := run([]string{old, filepath.Join(t.TempDir(), "missing.json")}, &bytes.Buffer{}); err == nil || code != 2 {
		t.Errorf("missing file: code = %d, err = %v, want I/O error", code, err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"something/else"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, err := run([]string{old, bad}, &bytes.Buffer{}); err == nil || code != 2 {
		t.Errorf("wrong schema: code = %d, err = %v, want schema error", code, err)
	}
	if code, err := run([]string{"-threshold", "-1", old, old}, &bytes.Buffer{}); err == nil || code != 2 {
		t.Errorf("negative threshold: code = %d, err = %v, want usage error", code, err)
	}
}
