package coopmrm

import (
	"math"
	"testing"
)

// The CellFloat zero-swallowing regression: before the fix, any parse
// failure — including every aggregated "mean±sd" cell a seed sweep
// produces — silently returned 0, so shape assertions against swept
// tables compared against 0 and passed (or failed) vacuously.
func TestCellFloatParsesAggregatedCells(t *testing.T) {
	tab := Table{Header: []string{"arm", "v"}}
	tab.AddRow("plain", "2.5")
	tab.AddRow("pct", "52.1%")
	tab.AddRow("agg", "55.00±5.00")
	tab.AddRow("aggpct", "55.00±7.07%")
	tab.AddRow("campaign", "55.00±7.07% [n=8, ci=4.90]")
	tab.AddRow("negative", "-3.25±0.10")
	tab.AddRow("text", "varies(3)")
	tab.AddRow("empty", "")

	cases := []struct {
		row  int
		want float64
		ok   bool
	}{
		{0, 2.5, true},
		{1, 52.1, true},
		{2, 55.00, true},
		{3, 55.00, true},
		{4, 55.00, true},
		{5, -3.25, true},
		{6, 0, false},
		{7, 0, false},
	}
	for _, tc := range cases {
		v, ok := tab.CellFloatOK(tc.row, 1)
		if v != tc.want || ok != tc.ok {
			t.Errorf("CellFloatOK(%d) = %v, %v; want %v, %v (cell %q)",
				tc.row, v, ok, tc.want, tc.ok, tab.Cell(tc.row, 1))
		}
		if got := tab.CellFloat(tc.row, 1); got != tc.want {
			t.Errorf("CellFloat(%d) = %v, want %v", tc.row, got, tc.want)
		}
	}
	// Out-of-range cells stay unparseable, not zero-valued truths.
	if _, ok := tab.CellFloatOK(99, 99); ok {
		t.Error("out-of-range cell should not parse")
	}
}

// A sweep table built by the real aggregator must round-trip through
// CellFloat: the assertion pattern every TestE*Shape-style test on
// swept tables depends on.
func TestCellFloatOnSweptTable(t *testing.T) {
	mk := func(v string) Table {
		tab := Table{ID: "T", Header: []string{"arm", "share"}}
		tab.AddRow("a", v)
		return tab
	}
	agg := AggregateSeedTables([]Table{mk("50%"), mk("60%")}, []int64{1, 2})
	if got := agg.Cell(0, 1); got != "55.00±7.07%" {
		t.Fatalf("aggregated cell = %q", got)
	}
	v, ok := agg.CellFloatOK(0, 1)
	if !ok || math.Abs(v-55) > 1e-9 {
		t.Errorf("CellFloatOK on swept cell = %v, %v; want 55, true", v, ok)
	}
}
