package coopmrm

import (
	"fmt"
	"time"

	"coopmrm/internal/fault"
	"coopmrm/internal/scenario"
	"coopmrm/internal/sim"
)

// RunE19 quantifies the transition risk of the trajectory-level MRM
// planner per interaction class and fault mode. Every manoeuvre — a
// planned positional trajectory, a scored scripted stop, a fallback
// hop — records a measured transition risk (internal/traj), and the
// metrics layer aggregates them per run; E19 sweeps that measurement
// over interaction class (individual / cooperative / collaborative)
// × fault mode (blind sensor, steering loss, severe brake loss) and
// aggregates over seeds with the streaming campaign machinery, so the
// numeric cells carry mean±sd and the 95% CI half-width.
//
// Shards: the per-seed rig honours opt.Shards, and the planner's
// private per-constituent RNG streams keep its output byte-identical
// for any worker count — asserted by the E19 differential test.
func RunE19(opt Options) Table {
	opt = opt.withDefaults()
	inner := Experiment{
		ID:    "E19",
		Title: "transition risk per interaction class and fault mode",
		Paper: "planner extension (quantified Definition 3 risk)",
		Run:   runE19Seed,
	}
	n := 10
	if opt.Quick {
		n = 3
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = opt.Seed + int64(i)
	}
	// Jobs must never share a recorder: the sweep runs bare, and the
	// bundle gets one full observation pass on the first seed below.
	sweepOpt := opt
	sweepOpt.Artifacts = nil
	tab, err := SweepSeedsStream(inner, sweepOpt, seeds, 1, CampaignConfig{})
	if err != nil {
		panic(err)
	}
	if opt.Artifacts != nil {
		runE19Seed(opt.WithSeed(seeds[0]))
	}
	return tab
}

// e19Classes maps the paper's interaction-class axis onto the quarry
// policies: an individual AV, the cooperative status-sharing class,
// and the collaborative coordinated class.
var e19Classes = []struct {
	label  string
	policy scenario.PolicyKind
}{
	{"individual", scenario.PolicyBaseline},
	{"cooperative", scenario.PolicyStatusSharing},
	{"collaborative", scenario.PolicyCoordinated},
}

// e19Faults is the fault-mode axis. The 0.92 brake severity leaves
// only the emergency stop feasible (service stops need more brake
// authority), exercising the quantified fallback chain rather than a
// clean positional manoeuvre.
var e19Faults = []struct {
	label    string
	kind     fault.Kind
	severity float64
}{
	{"sensor_blind", fault.KindSensor, 1.0},
	{"steering_loss", fault.KindSteering, 1.0},
	{"brake_severe", fault.KindBrake, 0.92},
}

// runE19Seed is the per-seed experiment the campaign folds: one quarry
// run per (class, fault) cell.
func runE19Seed(opt Options) Table {
	opt = opt.withDefaults()
	t := Table{
		ID:     "E19",
		Title:  "transition risk per interaction class and fault mode",
		Paper:  "planner extension (quantified Definition 3 risk)",
		Header: []string{"class", "fault", "manoeuvres", "risk_mean", "risk_max", "mrm_switches", "replans", "units_per_min"},
		Note:   "truck1_1 faulted at t=30s, permanent; risk_mean/risk_max are the measured per-manoeuvre transition risks (planned trajectories and scored scripted stops alike)",
	}
	horizon := 3 * time.Minute
	if opt.Quick {
		horizon = 90 * time.Second
	}
	for _, class := range e19Classes {
		for _, fm := range e19Faults {
			rig, release := quarryRig(opt, scenario.QuarryConfig{
				Pairs: 2, TrucksPerPair: 1,
				Policy: class.policy,
				Seed:   opt.Seed,
				Shards: opt.Shards,
				Faults: []fault.Fault{{
					ID: "e19", Target: "truck1_1", Kind: fm.kind,
					Severity: fm.severity, Permanent: true, At: 30 * time.Second,
				}},
			})
			res := rig.Run(horizon)
			opt.Observe(fmt.Sprintf("class=%s/fault=%s", class.label, fm.label),
				res.Report, res.Log, rig.Net, rig.Injector)
			replans := 0
			for _, c := range rig.All() {
				replans += c.Replans()
			}
			t.AddRow(class.label, fm.label,
				fmt.Sprintf("%d", res.Report.Manoeuvres),
				f2(res.Report.TransitionRiskMean),
				f2(res.Report.TransitionRiskMax),
				fmt.Sprintf("%d", res.Log.Count(sim.EventMRMSwitched)),
				fmt.Sprintf("%d", replans),
				f2(rig.Delivered()/horizon.Minutes()))
			release()
		}
	}
	return t
}
