// Harbour: the paper's Sec. III-C hierarchy-of-MRCs narrative. An
// automated crane unloads containers and forklifts stack them. Cold
// rain raises the traction risk beyond the site limit: the supervisor
// aborts the common strategic goal with MRM1 into MRC1 — a local MRC
// where the crane halts while forklifts finish the containers already
// unloaded and then park. When a forklift indicates slipping during
// MRM1, MRM2 into MRC2 follows: the global MRC, everything stops
// immediately and loads are set down.
//
// Run with: go run ./examples/harbour
package main

import (
	"fmt"
	"os"
	"time"

	"coopmrm/internal/fault"
	"coopmrm/internal/scenario"
	"coopmrm/internal/sim"
	"coopmrm/internal/world"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "harbour:", err)
		os.Exit(1)
	}
}

func run() error {
	weather := world.MustWeatherSchedule(
		world.WeatherChange{At: 75 * time.Second, Condition: world.Rain, TemperatureC: 2},
	)
	rig, err := scenario.NewHarbour(scenario.HarbourConfig{
		Forklifts: 3,
		TwoLevel:  true,
		Weather:   weather,
		Faults: []fault.Fault{{
			ID: "slip", Target: "forklift2", Kind: fault.KindBrake,
			Severity: 0.5, Permanent: true, At: 130 * time.Second,
		}},
	})
	if err != nil {
		return err
	}

	labels := map[int]string{
		0: "nominal: unloading and stacking",
		1: "MRC1 (local): crane halted, forklifts finishing and parking",
		2: "MRC2 (global): immediate stop, loads set down",
	}
	last := -1
	for t := 0; t < 24; t++ {
		rig.Run(10 * time.Second)
		if lvl := rig.Supervisor.Level(); lvl != last {
			last = lvl
			fmt.Printf("t=%3.0fs  -> level %d: %s (containers stacked: %.0f)\n",
				rig.Engine.Env().Clock.Now().Seconds(), lvl, labels[lvl], rig.Delivered())
		}
	}

	fmt.Println("\nfinal states:")
	for _, c := range rig.All() {
		fmt.Printf("  %-10s mode=%-8s at %v\n", c.ID(), c.Mode(), c.Body().Position())
	}
	log := rig.Engine.Env().Log
	if ev, ok := log.First(sim.EventMRCLocal); ok {
		fmt.Printf("\nMRM1 trigger: %s\n", ev.Detail)
	}
	if ev, ok := log.First(sim.EventMRCGlobal); ok {
		fmt.Printf("MRM2 trigger: %s\n", ev.Detail)
	}
	return nil
}
