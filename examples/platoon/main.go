// Platoon: the paper's Sec. III-B case (iv). A five-truck platoon
// transports goods; the leader's forward-looking sensors fail. The
// platoon adapts by electing a new leader; the faulty truck continues
// as a follower (the leader's field of view covers it). From the
// system-of-systems perspective there is no degradation at all; from
// the constituent's perspective the fault is a permanent performance
// degradation.
//
// Run with: go run ./examples/platoon
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"coopmrm/internal/fault"
	"coopmrm/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "platoon:", err)
		os.Exit(1)
	}
}

func run() error {
	rig, err := scenario.NewPlatoon(scenario.PlatoonConfig{
		Members: 5,
		Speed:   20,
		Faults: []fault.Fault{
			{ID: "radar", Target: "member1", Kind: fault.KindSensor,
				Detail: "long_range_radar", Severity: 1, Permanent: true, At: 60 * time.Second},
			{ID: "camera", Target: "member1", Kind: fault.KindSensor,
				Detail: "camera", Severity: 1, Permanent: true, At: 60 * time.Second},
		},
	})
	if err != nil {
		return err
	}

	rig.Run(55 * time.Second)
	fmt.Printf("t=55s   leader=%-8s speed=%4.1f m/s  order: %s\n",
		rig.Platoon.Leader().ID(), rig.Platoon.MeanSpeed(),
		strings.Join(rig.Platoon.Order(), " > "))

	rig.Run(10 * time.Second) // the leader's front sensors fail at 60s
	fmt.Printf("t=65s   leader=%-8s speed=%4.1f m/s  (handover after the fault)\n",
		rig.Platoon.Leader().ID(), rig.Platoon.MeanSpeed())

	rig.Run(2 * time.Minute)
	fmt.Printf("t=185s  leader=%-8s speed=%4.1f m/s  elections=%d\n",
		rig.Platoon.Leader().ID(), rig.Platoon.MeanSpeed(), rig.Platoon.Elections())

	m1 := rig.Members[0]
	fmt.Printf("\nmember1: mode=%s, permanent fault=%v, follower=%v\n",
		m1.Mode(), m1.HasPermanentFault(), m1.PlatoonFollower())
	fmt.Println("-> system view: no degradation (same speed and capacity)")
	fmt.Println("-> constituent view: permanent performance degradation; it could not operate alone")
	return nil
}
