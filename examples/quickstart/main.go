// Quickstart: the MRM/MRC lifecycle of a single automated vehicle.
//
// A car cruises on a highway; at t=30s its perception fails. The ADS
// assesses the loss (Definition 4's tactical-adaptation question),
// triggers a minimal risk manoeuvre, selects the best feasible MRC
// from the hierarchy, and reaches a stable stopped state. A user
// intervention then recovers it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"coopmrm/internal/core"
	"coopmrm/internal/fault"
	"coopmrm/internal/geom"
	"coopmrm/internal/odd"
	"coopmrm/internal/sim"
	"coopmrm/internal/vehicle"
	"coopmrm/internal/world"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A highway world: a lane, a continuous shoulder, and a rest stop.
	w := world.New()
	w.MustAddZone(world.Zone{ID: "lane", Kind: world.ZoneLane,
		Area: geom.NewRect(geom.V(-100, 0), geom.V(10000, 4))})
	w.MustAddZone(world.Zone{ID: "shoulder", Kind: world.ZoneShoulder,
		Area: geom.NewRect(geom.V(-100, 4), geom.V(10000, 7))})
	w.MustAddZone(world.Zone{ID: "rest_area", Kind: world.ZoneParking,
		Area: geom.NewRect(geom.V(3000, 8), geom.V(3060, 30))})

	// The constituent: a car with the road ODD and the road MRC
	// hierarchy (rest stop > shoulder > in-lane stop > emergency stop).
	roadODD := odd.DefaultRoadSpec()
	car, err := core.NewConstituent(core.Config{
		ID:        "ego",
		Spec:      vehicle.DefaultSpec(vehicle.KindCar),
		Start:     geom.Pose{Pos: geom.V(0, 2)},
		World:     w,
		ODD:       &roadODD,
		Hierarchy: core.DefaultRoadHierarchy(),
		Goal:      "drive to the city",
	})
	if err != nil {
		return err
	}

	engine := sim.NewEngine(sim.Config{Step: 100 * time.Millisecond, MaxTime: time.Hour})
	if err := engine.Register(car); err != nil {
		return err
	}

	// Schedule the failure: the whole sensor suite degrades to ~15 m
	// at t=30s — outside the road ODD's 20 m minimum, but enough for
	// the shoulder MRM.
	injector := fault.NewInjector(nil)
	injector.RegisterHandler("ego", car)
	if err := injector.Schedule(fault.Fault{
		ID: "perception", Target: "ego", Kind: fault.KindSensor,
		Severity: 0.9, Permanent: true, At: 30 * time.Second,
	}); err != nil {
		return err
	}
	engine.AddPreHook(injector.Hook())

	// Drive.
	if err := car.Dispatch(geom.MustPath(geom.V(0, 2), geom.V(10000, 2)), 30); err != nil {
		return err
	}
	fmt.Printf("t=%4.0fs  mode=%-8s  goal=%q\n", 0.0, car.Mode(), car.Goal())

	for i := 0; i < 12; i++ {
		engine.RunFor(10 * time.Second)
		fmt.Printf("t=%4.0fs  mode=%-8s  goal=%-16q  pos=%5.0fm  speed=%4.1fm/s\n",
			engine.Env().Clock.Now().Seconds(), car.Mode(), car.Goal(),
			car.Body().Position().X, car.Body().Speed())
		if car.InMRC() {
			break
		}
	}

	fmt.Printf("\nreached MRC %q (%s) — residual stop risk %.2f\n",
		car.CurrentMRC().ID, car.MRMReason(),
		w.StopRiskAt(car.Body().Position()))

	// Per Definitions 1 and 2, recovery from MRC needs intervention.
	car.Recover(engine.Env())
	fmt.Printf("after user recovery: mode=%s goal=%q interventions=%d\n",
		car.Mode(), car.Goal(), car.Interventions())

	fmt.Println("\nevent log:")
	fmt.Print(engine.Env().Log.Summary())
	return nil
}
