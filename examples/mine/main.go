// Mine: the paper's Sec. IV-A cooperative examples in a narrow mine.
//
//  1. Status-sharing: a truck stranded blind in the tunnel broadcasts
//     its stopped position; the others reroute around it and keep
//     hauling (only individual MRCs exist in this class).
//  2. Prescriptive: the control room orders a truck into a passing
//     pocket so a large machine can pass (local MRC), then closes the
//     whole site (global MRC).
//
// Run with: go run ./examples/mine
package main

import (
	"fmt"
	"os"
	"time"

	"coopmrm/internal/fault"
	"coopmrm/internal/geom"
	"coopmrm/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mine:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("=== status-sharing: reroute around a stranded truck ===")
	if err := statusSharing(); err != nil {
		return err
	}
	fmt.Println("\n=== prescriptive: pocket order, then site closure ===")
	return prescriptive()
}

func statusSharing() error {
	rig, err := scenario.NewQuarry(scenario.QuarryConfig{
		Pairs: 2, TrucksPerPair: 2, Policy: scenario.PolicyStatusSharing,
	})
	if err != nil {
		return err
	}
	// Strand the first truck mid-tunnel, blind.
	victim := rig.Trucks[0]
	victim.Body().Teleport(geom.Pose{Pos: geom.V(150, 0)})
	victim.ApplyFault(fault.Fault{ID: "blind", Target: victim.ID(),
		Kind: fault.KindSensor, Severity: 1, Permanent: true})

	rig.Run(4 * time.Minute)
	fmt.Printf("stranded: %s at %v (mode %s)\n",
		victim.ID(), victim.Body().Position(), victim.Mode())
	fmt.Printf("survivors delivered %.0f loads by rerouting through the alternate drift\n",
		rig.Delivered())
	for i, c := range rig.Trucks[1:] {
		fmt.Printf("  %-10s avoids tunnel node: %v\n",
			c.ID(), rig.Hauls[i+1].Avoided("mid") || rig.Hauls[i+1].AvoidedEdge("load", "mid") ||
				rig.Hauls[i+1].AvoidedEdge("mid", "dep"))
	}
	return nil
}

func prescriptive() error {
	rig, err := scenario.NewQuarry(scenario.QuarryConfig{
		Pairs: 2, TrucksPerPair: 2, Policy: scenario.PolicyPrescriptive,
	})
	if err != nil {
		return err
	}
	rig.Run(15 * time.Second)

	// Local: the small truck yields the tunnel.
	rig.Authority.CommandMRC(rig.Engine.Env(), "truck1_1", "pocket",
		"large machine needs the tunnel")
	rig.Run(2 * time.Minute)
	fmt.Printf("truck1_1: mode=%s in %q (local MRC; the others keep working: %.0f loads)\n",
		rig.Trucks[0].Mode(), rig.Trucks[0].CurrentMRC().ID, rig.Delivered())

	// Global: flooding closes the site.
	rig.Authority.CommandAllMRC(rig.Engine.Env(), "parking", "flooding")
	for _, d := range rig.Diggers {
		d.TriggerMRMTo(rig.Engine.Env(), "parking", "flooding")
	}
	rig.Run(3 * time.Minute)
	stopped := 0
	for _, c := range rig.All() {
		if c.InMRC() {
			stopped++
		}
	}
	fmt.Printf("after the site closure: %d/%d constituents in MRC (global)\n",
		stopped, len(rig.All()))
	return nil
}
