// Quarry: the paper's Sec. III-A running example. Two digger/truck
// pairs move material collaboratively (coordinated class). When one
// digger breaks down, the scope resolution yields a *local* MRC — the
// partner truck re-pairs with the surviving digger and productivity
// continues at a reduced rate. With a single pair, the same failure
// cascades into a *global* MRC.
//
// Run with: go run ./examples/quarry
package main

import (
	"fmt"
	"os"
	"time"

	"coopmrm/internal/fault"
	"coopmrm/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quarry:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("=== two pairs: digger failure stays local ===")
	if err := episode(2); err != nil {
		return err
	}
	fmt.Println("\n=== one pair: the same failure goes global ===")
	return episode(1)
}

func episode(pairs int) error {
	rig, err := scenario.NewQuarry(scenario.QuarryConfig{
		Pairs:         pairs,
		TrucksPerPair: 1,
		Policy:        scenario.PolicyCoordinated,
		Faults: []fault.Fault{{
			ID: "digger-breakdown", Target: "digger1", Kind: fault.KindSensor,
			Severity: 1, Permanent: true, At: 60 * time.Second,
		}},
	})
	if err != nil {
		return err
	}

	rig.Run(55 * time.Second)
	fmt.Printf("t=55s  delivered=%.0f  (everyone nominal)\n", rig.Delivered())

	rig.Run(4 * time.Minute)
	fmt.Printf("t=295s delivered=%.0f\n", rig.Delivered())
	for _, c := range rig.All() {
		status := "continues"
		if c.InMRC() {
			status = "in MRC " + c.CurrentMRC().ID
		}
		fmt.Printf("  %-10s mode=%-8s %s\n", c.ID(), c.Mode(), status)
	}

	dec := rig.Model.ResolveScope("digger1")
	fmt.Printf("scope decision for digger1 failure: %s (affected %v, continuing %v)\n",
		dec.Level, dec.Affected, dec.Continuing)
	return nil
}
