package coopmrm

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"coopmrm/internal/artifact"
	"coopmrm/internal/fault"
	"coopmrm/internal/geom"
	"coopmrm/internal/metrics"
	"coopmrm/internal/scenario"
	"coopmrm/internal/sim"
)

// e18CoopCap bounds the cooperative (status-sharing) arm of E18: a
// beacon round is senders × fleet broadcast envelopes, so at 2,000
// pairs V2X traffic — not the tick loop — would dominate the run and
// the measurement. Up to this size the cooperative arm runs alongside
// the comm-free baseline; above it only the baseline scales on.
const e18CoopCap = 200

// RunE18 is the mega-fleet scale sweep on the sharded tick engine:
// the E16 stranded-truck incident (truck1_1 blind mid-tunnel at t=0)
// at 50 to 2,000 quarry pairs. Every arm runs twice — on the
// sequential engine and on the sharded engine — and the table's
// sharded_match column records whether the two runs produced
// byte-identical output (event stream, metrics report, delivered
// units, network accounting): the determinism guarantee of DESIGN.md
// §8, asserted on every row of every run of this experiment.
//
// Tick throughput per arm and engine goes to bench.json (details
// entries), NOT into the table: wall-clock numbers are machine-
// dependent and the artifact contract keeps bundle bytes a function
// of experiment + seed only. The scaling claim — sharded throughput
// approaching shards× sequential on a multi-core host — is read from
// the details pairs, e.g. with cmd/benchdiff on two bench.json files.
func RunE18(opt Options) Table {
	opt = opt.withDefaults()
	t := Table{
		ID:     "E18",
		Title:  "mega-fleet scale: sharded tick engine, 50-2000 pairs",
		Paper:  "scale extension (infrastructure-level fleets)",
		Header: []string{"pairs", "constituents", "policy", "units_per_min", "near_misses", "sharded_match"},
		Note:   "truck1_1 stranded blind mid-tunnel at t=0 (E16 staging); every arm runs on the sequential and the sharded engine and sharded_match asserts byte-identical output; throughput per engine is in bench.json details",
	}
	sizes := []int{50, 200, 500, 1000, 2000}
	horizon := 60 * time.Second
	if opt.Quick {
		sizes = []int{50, 200}
		horizon = 30 * time.Second
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = runtime.NumCPU()
	}
	if shards < 2 {
		shards = 2 // the sharded arm must actually shard, even on one CPU
	}
	ticks := int64(horizon / (100 * time.Millisecond))
	for _, pairs := range sizes {
		policies := []scenario.PolicyKind{scenario.PolicyBaseline}
		if pairs <= e18CoopCap {
			policies = append(policies, scenario.PolicyStatusSharing)
		}
		for _, p := range policies {
			seq := runE18Arm(opt, pairs, p, horizon, 0)
			shd := runE18Arm(opt, pairs, p, horizon, shards)
			for _, arm := range []struct {
				a      e18Arm
				shards int
			}{{seq, 1}, {shd, shards}} {
				opt.ObserveBench(artifact.BenchDetail{
					ID:          fmt.Sprintf("E18/pairs=%d/%s", pairs, p),
					Shards:      arm.shards,
					Entities:    arm.a.entities,
					Ticks:       ticks,
					WallSeconds: arm.a.wall.Seconds(),
					TicksPerSec: float64(ticks) / arm.a.wall.Seconds(),
				})
			}
			t.AddRow(fmt.Sprintf("%d", pairs), fmt.Sprintf("%d", 2*pairs), p.String(),
				f2(seq.delivered/horizon.Minutes()),
				fmt.Sprintf("%d", seq.report.NearMisses),
				yesno(seq.matches(shd)))
		}
	}
	return t
}

// e18Arm is one engine run's complete observable output plus its
// timing.
type e18Arm struct {
	delivered     float64
	report        metrics.Report
	events        []sim.Event
	sent, dropped int64
	entities      int
	wall          time.Duration
}

// matches reports whether two runs produced identical observable
// output — the shard-determinism assertion.
func (a e18Arm) matches(b e18Arm) bool {
	return a.delivered == b.delivered &&
		a.sent == b.sent && a.dropped == b.dropped &&
		reflect.DeepEqual(a.report, b.report) &&
		reflect.DeepEqual(a.events, b.events)
}

func runE18Arm(opt Options, pairs int, policy scenario.PolicyKind, horizon time.Duration, shards int) e18Arm {
	rig := mustQuarry(scenario.QuarryConfig{
		Pairs: pairs, TrucksPerPair: 1,
		Policy: policy,
		Seed:   opt.Seed,
		// 5s beacons: at mega-fleet sizes the 1s default turns the run
		// into a broadcast benchmark; the reroute behaviour only needs
		// the blockage announced within a few seconds.
		BeaconPeriod: 5 * time.Second,
		Shards:       shards,
	})
	victim := rig.Trucks[0]
	victim.Body().Teleport(geom.Pose{Pos: geom.V(150, 0)})
	victim.ApplyFault(fault.Fault{ID: "blind", Target: victim.ID(),
		Kind: fault.KindSensor, Severity: 1, Permanent: true})
	start := time.Now()
	res := rig.Run(horizon)
	wall := time.Since(start)
	if shards <= 1 {
		// Only the sequential arm feeds the bundle: the sharded arm is
		// asserted identical, and recording it twice would double the
		// artifact volume for zero information.
		opt.Observe(fmt.Sprintf("pairs=%d/%s", pairs, policy),
			res.Report, res.Log, rig.Net, rig.Injector)
	}
	sent, dropped := rig.Net.Stats()
	return e18Arm{
		delivered: rig.Delivered(),
		report:    res.Report,
		events:    res.Log.Events(),
		sent:      sent,
		dropped:   dropped,
		entities:  len(rig.Engine.Entities()),
		wall:      wall,
	}
}
