module coopmrm

go 1.22
