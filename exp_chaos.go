package coopmrm

import (
	"fmt"
	"time"

	"coopmrm/internal/comm"
	"coopmrm/internal/fault"
	"coopmrm/internal/scenario"
	"coopmrm/internal/sim"
)

// RunE17 stress-tests every interaction class against V2X chaos: a
// quarry fleet loses a truck to a sensor fault at t=30s, and at the
// same instant a global communication blackout of swept duration
// begins — on top of optional steady-state message loss and reorder.
// The paper's premise is that each class degrades gracefully when its
// channel does; this experiment quantifies the claim. Classes that use
// no V2X at all (baseline, choreographed) are the control group: the
// blackout cannot touch them.
func RunE17(opt Options) Table {
	opt = opt.withDefaults()
	t := Table{
		ID:     "E17",
		Title:  "V2X chaos: partition duration x loss x reorder per class",
		Paper:  "design: V2X robustness",
		Header: []string{"class", "partition_s", "loss", "reorder", "deliveries", "mrcs", "drop_share"},
		Note:   "truck1_1 blind at t=30s; a global blackout starts at the same instant and lasts partition_s; loss/reorder apply for the whole run; drop_share = dropped/sent",
	}
	horizon := 4 * time.Minute
	durations := []time.Duration{0, 30 * time.Second, 90 * time.Second}
	chaos := []struct{ loss, reorder float64 }{{0, 0}, {0.25, 0}, {0.25, 0.25}}
	if opt.Quick {
		horizon = 2 * time.Minute
		durations = []time.Duration{0, 45 * time.Second, 90 * time.Second}
		chaos = []struct{ loss, reorder float64 }{{0, 0}, {0.25, 0.25}}
	}
	const faultAt = 30 * time.Second
	for _, p := range scenario.AllPolicies() {
		for _, ch := range chaos {
			for _, d := range durations {
				net := comm.NetConfig{
					Latency:     50 * time.Millisecond,
					LossProb:    ch.loss,
					ReorderProb: ch.reorder,
				}
				if d > 0 {
					net.Partitions = []comm.Partition{{
						A: comm.PartitionAny, B: comm.PartitionAny,
						From: faultAt, Until: faultAt + d,
					}}
				}
				rig := mustQuarry(scenario.QuarryConfig{
					Pairs: 2, TrucksPerPair: 2, Policy: p, Seed: opt.Seed,
					Concerted: true,
					Shards:    opt.Shards,
					Net:       &net,
					Faults: []fault.Fault{{ID: "t", Target: "truck1_1",
						Kind: fault.KindSensor, Severity: 1, Permanent: true, At: faultAt}},
				})
				res := rig.Run(horizon)
				opt.Observe(fmt.Sprintf("class=%s/part=%s/loss=%g/reorder=%g",
					p, d, ch.loss, ch.reorder), res.Report, res.Log, rig.Net, rig.Injector)
				sent, dropped := rig.Net.Stats()
				share := 0.0
				if sent > 0 {
					share = float64(dropped) / float64(sent)
				}
				t.AddRow(p.String(), f1(d.Seconds()), fmt.Sprintf("%g", ch.loss),
					fmt.Sprintf("%g", ch.reorder), f1(rig.Delivered()),
					fmt.Sprintf("%d", res.Log.Count(sim.EventMRCReached)),
					fmt.Sprintf("%.3f", share))
			}
		}
	}
	return t
}
