package coopmrm

import (
	"fmt"
	"time"

	"coopmrm/internal/collab"
	"coopmrm/internal/coop"
	"coopmrm/internal/fault"
	"coopmrm/internal/scenario"
	"coopmrm/internal/sim"
)

// table1Expected records the MRM/MRC column of the paper's Table I as
// boolean capabilities per class: can the class realise local MRCs,
// global MRCs, and concerted MRMs?
var table1Expected = map[scenario.PolicyKind][3]bool{
	scenario.PolicyStatusSharing:    {true, false, false},
	scenario.PolicyIntentSharing:    {true, false, false},
	scenario.PolicyAgreementSeeking: {true, true, true},
	scenario.PolicyPrescriptive:     {true, true, true},
	scenario.PolicyCoordinated:      {true, true, true},
	scenario.PolicyChoreographed:    {true, true, true},
	scenario.PolicyOrchestrated:     {true, true, true},
}

// RunE3 regenerates the MRM/MRC column of Table I by probing every
// class in the quarry with (a) a single-constituent failure — does
// the class achieve a local MRC, with the rest continuing? — and (b)
// the class's global trigger — can it bring the whole system to MRC?
// The concerted column reports whether a concerted MRM occurred in
// either probe.
func RunE3(opt Options) Table {
	opt = opt.withDefaults()
	t := Table{
		ID:     "E3",
		Title:  "taxonomy matrix: MRM/MRC capability per class",
		Paper:  "Table I",
		Header: []string{"class", "local_mrc", "global_mrc", "concerted", "matches_table_I"},
		Note:   "local probe: one truck fails; global probe: class-specific trigger (evacuation, order, dependency loss, designed response)",
	}
	for _, p := range scenario.AllPolicies() {
		local, global, concerted := probeClass(p, opt)
		expected, known := table1Expected[p]
		match := "-"
		if known {
			match = yesno(local == expected[0] && global == expected[1] && concerted == expected[2])
		}
		t.AddRow(p.String(), yesno(local), yesno(global), yesno(concerted), match)
	}
	return t
}

// probeClass runs the local and global probes for one class.
func probeClass(p scenario.PolicyKind, opt Options) (local, global, concerted bool) {
	// The probes need the full horizon even in quick mode: reroutes
	// and parking drives take simulated minutes to show up in the
	// delivery counts.
	horizon := 4 * time.Minute

	// Probe A — local: one truck fails.
	{
		rig := mustQuarry(scenario.QuarryConfig{
			Pairs: 2, Policy: p, Seed: opt.Seed, Concerted: true,
			Faults: []fault.Fault{{
				ID: "t", Target: "truck1_1", Kind: fault.KindSensor,
				Severity: 1, Permanent: true, At: 45 * time.Second,
			}},
		})
		before := 0.0
		rig.Run(60 * time.Second)
		before = rig.Delivered()
		res := rig.Run(horizon - 60*time.Second)
		failedInMRC := rig.Trucks[0].InMRC()
		othersOperational := 0
		for _, c := range rig.All() {
			if c != rig.Trucks[0] && c.Operational() {
				othersOperational++
			}
		}
		progressed := rig.Delivered() > before
		local = failedInMRC && othersOperational > 0 && progressed
		concerted = concerted || res.Log.Count(sim.EventMRMConcerted) > 0
	}

	// Probe B — global: class-specific trigger.
	{
		rig := mustQuarry(scenario.QuarryConfig{
			Pairs: 2, Policy: p, Seed: opt.Seed, Concerted: true,
		})
		rig.Run(30 * time.Second)
		triggerGlobal(rig, p)
		res := rig.Run(horizon)
		allStopped := true
		for _, c := range rig.All() {
			if c.Operational() {
				allStopped = false
			}
		}
		global = allStopped
		concerted = concerted || res.Log.Count(sim.EventMRMConcerted) > 0
	}
	return local, global, concerted
}

// triggerGlobal fires the class-appropriate global-MRC mechanism.
func triggerGlobal(rig *scenario.QuarryRig, p scenario.PolicyKind) {
	env := rig.Engine.Env()
	switch p {
	case scenario.PolicyAgreementSeeking:
		// Mine fire: one vehicle declares a negotiated evacuation.
		for _, pol := range rig.Policies {
			if ag, ok := pol.(*coop.AgreementSeeking); ok {
				ag.DeclareEvacuation(env)
				break
			}
		}
		// Diggers are not agreement members; a fire stops them too
		// (they are part of the site emergency procedure).
		for _, d := range rig.Diggers {
			d.TriggerMRMTo(env, "parking", "mine fire evacuation")
		}
	case scenario.PolicyPrescriptive:
		rig.Authority.CommandAllMRC(env, "parking", "flooding: site closed")
		// Diggers obey the same order via direct command (they carry
		// no haul policy in this rig).
		for _, d := range rig.Diggers {
			d.TriggerMRMTo(env, "parking", "flooding: site closed")
		}
	case scenario.PolicyCoordinated, scenario.PolicyOrchestrated:
		// Dependency loss: every digger fails, stranding all trucks.
		for i, d := range rig.Diggers {
			d.ApplyFault(fault.Fault{
				ID: fmt.Sprintf("dig%d", i), Target: d.ID(),
				Kind: fault.KindSensor, Severity: 1, Permanent: true,
			})
		}
	case scenario.PolicyChoreographed:
		// Designed response: flip every member to the halt response
		// and kill one truck silently.
		for _, pol := range rig.Policies {
			if ch, ok := pol.(*collab.Choreographed); ok {
				ch.Response = collab.ResponseHalt
				ch.Deadline = 60 * time.Second
			}
		}
		rig.Trucks[0].ApplyFault(fault.Fault{
			ID: "silent", Target: rig.Trucks[0].ID(),
			Kind: fault.KindSensor, Severity: 1, Permanent: true,
		})
		// The diggers' designed response to a site halt is to stop too.
		// (Their rule watches the same check-in board in a full
		// design; here the experiment applies it directly.)
		for _, d := range rig.Diggers {
			d.TriggerMRMTo(env, "in_place", "designed response: site halt")
		}
	default:
		// Baseline, status- and intent-sharing have no global-MRC
		// mechanism: fail one truck and observe that nothing
		// system-wide happens.
		rig.Trucks[0].ApplyFault(fault.Fault{
			ID: "t", Target: rig.Trucks[0].ID(),
			Kind: fault.KindSensor, Severity: 1, Permanent: true,
		})
	}
}
